//! The unconditional lower bound for expander connectivity (Section 9).
//!
//! Theorem 5 shows every `s`-memory MPC algorithm for `ExpanderConn_n` (the
//! promise problem of deciding connectivity when every component is a sparse
//! expander) needs `Ω(log_s n)` rounds. The proof reduces to a
//! *decision-tree* (query) lower bound, Lemma 9.3: an adversary maintains a
//! collection `B = {B_1, …, B_k}` of `k = Ω(n)` edge-almost-disjoint
//! expanders on the same vertex set (Claim 9.4); the hidden input is
//! `G_S ∪ G_T` (two disjoint expanders on the vertex halves) plus *at most
//! one* of the `B_i`. Whenever the algorithm queries an edge, the adversary
//! answers "absent" and discards every `B_i` containing that edge — only
//! `O(log n)` of them per query — so `Ω(n / log n)` queries are needed before
//! the adversary runs out of room to flip the answer.
//!
//! This module implements the instance family, the adversary, and the query
//! game, so experiment E8 can measure the forced query count and verify the
//! `Ω(n / log n)` shape.

use rand::Rng;
use serde::{Deserialize, Serialize};
use wcc_graph::{generators, Graph};

/// The adversarial instance family of Claim 9.4 plus the two fixed expanders
/// `G_S`, `G_T` of Lemma 9.3.
#[derive(Debug, Clone)]
pub struct ExpanderConnInstance {
    /// Number of vertices (must be even; `S` is the first half, `T` the
    /// second).
    pub n: usize,
    /// The candidate "bridging" expanders `B_1, …, B_k` on the full vertex
    /// set. The hidden input contains at most one of them.
    pub candidates: Vec<Graph>,
    /// The fixed expander on the first half.
    pub left: Graph,
    /// The fixed expander on the second half.
    pub right: Graph,
}

impl ExpanderConnInstance {
    /// Builds an instance with `k = n / (candidate_divisor · d)` candidate
    /// expanders of degree `d` (Claim 9.4 uses `k = n/100d`; `candidate_divisor`
    /// exposes the constant).
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` or `d` is odd.
    pub fn build<R: Rng + ?Sized>(
        n: usize,
        d: usize,
        candidate_divisor: usize,
        rng: &mut R,
    ) -> Self {
        assert!(n >= 8, "instance needs at least 8 vertices");
        assert!(d.is_multiple_of(2), "candidate degree must be even");
        let n = n - (n % 2);
        let half = n / 2;
        let k = (n / (candidate_divisor.max(1) * d)).max(1);
        let candidates = (0..k)
            .map(|_| generators::random_regular_permutation_graph(n, d, rng))
            .collect();
        ExpanderConnInstance {
            n,
            candidates,
            left: generators::random_regular_permutation_graph(half, d, rng),
            right: generators::random_regular_permutation_graph(half, d, rng),
        }
    }

    /// Number of candidate expanders `k`.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// The maximum, over all vertex pairs, of the number of candidates
    /// containing that pair — the `O(log n)` quantity of Claim 9.4.
    pub fn max_edge_multiplicity(&self) -> usize {
        use std::collections::HashMap;
        let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
        for b in &self.candidates {
            let mut seen = std::collections::HashSet::new();
            for &(u, v) in b.edges() {
                let key = if u <= v { (u, v) } else { (v, u) };
                if seen.insert(key) {
                    *counts.entry(key).or_insert(0) += 1;
                }
            }
        }
        counts.values().copied().max().unwrap_or(0)
    }

    /// Materialises the "connected" instance `G_S ∪ G_T ∪ B_i`.
    pub fn connected_instance(&self, candidate: usize) -> Graph {
        let mut edges: Vec<(usize, usize)> = self.base_edges();
        edges.extend(self.candidates[candidate].edge_iter());
        Graph::from_edges_unchecked(self.n, edges)
    }

    /// Materialises the "disconnected" instance `G_S ∪ G_T`.
    pub fn disconnected_instance(&self) -> Graph {
        Graph::from_edges_unchecked(self.n, self.base_edges())
    }

    fn base_edges(&self) -> Vec<(usize, usize)> {
        let half = self.n / 2;
        self.left
            .edge_iter()
            .chain(self.right.edge_iter().map(|(u, v)| (u + half, v + half)))
            .collect()
    }
}

/// The adversary of Lemma 9.3: answers every edge query "absent" and discards
/// the candidates that contained it, keeping the connectivity answer
/// undetermined for as long as at least one candidate survives.
#[derive(Debug, Clone)]
pub struct QueryAdversary {
    alive: Vec<bool>,
    edge_to_candidates: std::collections::HashMap<(u32, u32), Vec<usize>>,
    queries: usize,
    alive_count: usize,
}

/// The adversary's answer to a single edge query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryAnswer {
    /// The edge is declared absent (the adversary's only answer while it can
    /// keep the outcome undetermined).
    Absent,
    /// The adversary can no longer keep both outcomes alive; the game is over
    /// and the algorithm may learn the answer.
    Resolved,
}

impl QueryAdversary {
    /// Creates the adversary for an instance.
    pub fn new(instance: &ExpanderConnInstance) -> Self {
        let mut edge_to_candidates: std::collections::HashMap<(u32, u32), Vec<usize>> =
            std::collections::HashMap::new();
        for (i, b) in instance.candidates.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for &(u, v) in b.edges() {
                let key = if u <= v { (u, v) } else { (v, u) };
                if seen.insert(key) {
                    edge_to_candidates.entry(key).or_default().push(i);
                }
            }
        }
        QueryAdversary {
            alive: vec![true; instance.num_candidates()],
            alive_count: instance.num_candidates(),
            edge_to_candidates,
            queries: 0,
        }
    }

    /// Number of candidates still compatible with all answers given so far.
    pub fn alive_candidates(&self) -> usize {
        self.alive_count
    }

    /// Number of queries answered so far.
    pub fn queries_answered(&self) -> usize {
        self.queries
    }

    /// Answers the query "is `{u, v}` an edge of the hidden graph?".
    ///
    /// While at least one candidate expander avoids every queried pair, the
    /// adversary answers [`QueryAnswer::Absent`] (consistent with both the
    /// connected and the disconnected completion); once the last candidate is
    /// eliminated the answer is [`QueryAnswer::Resolved`].
    pub fn query(&mut self, u: usize, v: usize) -> QueryAnswer {
        if self.alive_count == 0 {
            return QueryAnswer::Resolved;
        }
        self.queries += 1;
        let key = if u <= v {
            (u as u32, v as u32)
        } else {
            (v as u32, u as u32)
        };
        if let Some(cands) = self.edge_to_candidates.get(&key) {
            for &c in cands {
                if self.alive[c] {
                    self.alive[c] = false;
                    self.alive_count -= 1;
                }
            }
        }
        if self.alive_count == 0 {
            QueryAnswer::Resolved
        } else {
            QueryAnswer::Absent
        }
    }
}

/// Plays the query game with the *strongest natural* query strategy — query
/// only pairs that still belong to some alive candidate, always choosing a
/// pair covered by the largest number of alive candidates — and returns the
/// number of queries needed before the adversary is pinned down.
///
/// Lemma 9.3 predicts this is `Ω(k / log n)` no matter the strategy; this
/// greedy strategy is (essentially) optimal for the algorithm, so the
/// measured count is a faithful estimate of the decision-tree complexity.
pub fn greedy_query_game(instance: &ExpanderConnInstance) -> usize {
    let mut adversary = QueryAdversary::new(instance);
    // Pre-index: for each pair, which candidates contain it.
    let pairs: Vec<((u32, u32), Vec<usize>)> = adversary
        .edge_to_candidates
        .iter()
        .map(|(k, v)| (*k, v.clone()))
        .collect();
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    // Greedy: descending multiplicity (recomputing exact multiplicities after
    // every kill would be quadratic; the static order is within a constant of
    // the adaptive greedy on these instances). Ties break on the pair itself:
    // `pairs` comes out of a HashMap, whose iteration order is randomised per
    // process — without the tiebreak the measured query count (and E8's
    // output) would differ run to run for the same seed.
    order.sort_by_key(|&i| (std::cmp::Reverse(pairs[i].1.len()), pairs[i].0));
    for &i in &order {
        let (u, v) = pairs[i].0;
        if adversary.query(u as usize, v as usize) == QueryAnswer::Resolved {
            break;
        }
    }
    adversary.queries_answered()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wcc_graph::prelude::*;

    fn instance(n: usize, seed: u64) -> ExpanderConnInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        ExpanderConnInstance::build(n, 8, 4, &mut rng)
    }

    #[test]
    fn instances_satisfy_the_promise() {
        let inst = instance(200, 1);
        // Disconnected case: exactly two components, each an expander half.
        let disc = inst.disconnected_instance();
        let cc = connected_components(&disc);
        assert_eq!(cc.num_components(), 2);
        // Connected case: one component.
        let conn = inst.connected_instance(0);
        assert_eq!(connected_components(&conn).num_components(), 1);
        // Sparsity: O(n) edges.
        assert!(conn.num_edges() <= 20 * conn.num_vertices());
        // Both halves are decent expanders.
        let gaps = spectral::component_spectral_gaps(&disc, 200);
        for gap in gaps {
            assert!(gap > 0.15, "half gap {gap}");
        }
    }

    #[test]
    fn candidate_count_is_linear_and_multiplicity_logarithmic() {
        let inst = instance(400, 2);
        let k = inst.num_candidates();
        assert!(k >= 400 / (4 * 8));
        // Claim 9.4: no pair is covered by more than O(log n) candidates.
        let max_mult = inst.max_edge_multiplicity();
        assert!(
            max_mult <= 8,
            "a pair is shared by {max_mult} candidates — far above O(log n)"
        );
    }

    #[test]
    fn adversary_survives_many_queries() {
        let inst = instance(400, 3);
        let k = inst.num_candidates();
        let mut adv = QueryAdversary::new(&inst);
        // Querying pairs outside every candidate never helps.
        assert_eq!(adv.query(0, 1), QueryAnswer::Absent);
        // Even an adaptive-greedy algorithm needs at least k / max_multiplicity queries.
        let forced = greedy_query_game(&inst);
        let lower = k / inst.max_edge_multiplicity().max(1);
        assert!(
            forced >= lower,
            "greedy resolved in {forced} queries; the adversary argument guarantees >= {lower}"
        );
    }

    #[test]
    fn forced_queries_grow_roughly_linearly_in_n() {
        let small = greedy_query_game(&instance(200, 4));
        let large = greedy_query_game(&instance(800, 5));
        assert!(
            large >= 2 * small,
            "queries should scale ~linearly with n: {small} -> {large}"
        );
    }

    #[test]
    fn adversary_reports_resolution() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let inst = ExpanderConnInstance::build(64, 8, 2, &mut rng);
        let mut adv = QueryAdversary::new(&inst);
        // Exhaustively query every candidate edge; eventually resolved.
        let mut resolved = false;
        'outer: for b in &inst.candidates {
            for (u, v) in b.edge_iter() {
                if adv.query(u, v) == QueryAnswer::Resolved {
                    resolved = true;
                    break 'outer;
                }
            }
        }
        assert!(resolved);
        assert_eq!(adv.alive_candidates(), 0);
        assert_eq!(adv.query(0, 1), QueryAnswer::Resolved);
    }

    #[test]
    #[should_panic(expected = "at least 8 vertices")]
    fn tiny_instances_are_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let _ = ExpanderConnInstance::build(4, 4, 2, &mut rng);
    }
}
