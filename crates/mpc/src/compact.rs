//! Compact-tuple width negotiation for the data plane.
//!
//! The simulator's word accounting is denominated in 8-byte model words, but
//! the bytes the host actually moves per tuple depend on the representation:
//! a vertex or component identifier fits a [`CompactVertex`] (`u32`) whenever
//! the identifier space has at most `2^32` members, and a whole relabeled
//! edge then packs into one `u64` ([`pack_edge`]) — half the traffic of the
//! wide `(usize, usize)` layout. This module centralises the negotiation
//! rule ([`TupleWidth::negotiate`]), the pack/unpack codec, and the
//! [`natural_words_per_tuple`] helper that derives an honest
//! `words_per_tuple` charge from a tuple type's size, so every layer
//! (contraction, shuffles, reductions) makes the same wide/narrow decision
//! and charges it the same way. The wide path is never removed: callers fall
//! back to it whenever the identifier space exceeds the compact limit, so
//! narrowing can never truncate (see DESIGN.md §8).

/// Bytes per model word — the `u64` accounting unit all round statistics
/// are denominated in.
pub const WORD_BYTES: usize = 8;

/// A vertex (or contracted-part) identifier in the compact representation.
///
/// Valid whenever the identifier space was negotiated
/// [`TupleWidth::Compact`]; the graph layer already stores adjacency as
/// `u32`, so the compact data plane extends that narrow width through the
/// shuffle and sort paths instead of widening to `usize` at the boundary.
pub type CompactVertex = u32;

/// Number of distinct identifiers the compact width can represent
/// (`2^32`): ids `0..=u32::MAX`.
pub const COMPACT_ID_SPACE: u128 = (u32::MAX as u128) + 1;

/// The negotiated per-tuple representation of a data-plane stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TupleWidth {
    /// Identifiers fit [`CompactVertex`]; an edge packs into one `u64`.
    Compact,
    /// Identifier space exceeds `2^32`; tuples stay `(usize, usize)`.
    Wide,
}

impl TupleWidth {
    /// Negotiates the width for an identifier space of `ids` members
    /// (identifiers `0..ids`): compact iff every identifier fits a `u32`.
    /// The comparison is done in `u128` so `ids == 2^32` itself (the largest
    /// compact space, whose top identifier is exactly `u32::MAX`) negotiates
    /// compact on 64-bit hosts instead of overflowing.
    pub fn negotiate(ids: usize) -> TupleWidth {
        if (ids as u128) <= COMPACT_ID_SPACE {
            TupleWidth::Compact
        } else {
            TupleWidth::Wide
        }
    }

    /// `true` for [`TupleWidth::Compact`].
    pub fn is_compact(self) -> bool {
        matches!(self, TupleWidth::Compact)
    }

    /// Stable label for reports (`wcc --json` emits this).
    pub fn label(self) -> &'static str {
        match self {
            TupleWidth::Compact => "compact-u32",
            TupleWidth::Wide => "wide-u64",
        }
    }

    /// Bytes one packed edge occupies on the wire under this width.
    pub fn edge_bytes(self) -> usize {
        match self {
            TupleWidth::Compact => 8,
            TupleWidth::Wide => 16,
        }
    }
}

/// The `words_per_tuple` charge that matches a tuple type's actual size:
/// `⌈size_of::<T>() / 8⌉`, minimum 1. A `u64`-packed edge charges 1 word
/// where the wide `(usize, usize)` layout charges 2 — this is how the
/// compact data plane's halved traffic shows up honestly in the model
/// quantities instead of being hidden behind the historical default of 2.
pub fn natural_words_per_tuple<T>() -> usize {
    std::mem::size_of::<T>().div_ceil(WORD_BYTES).max(1)
}

/// Packs an edge of compact identifiers into one `u64`: `a` in the high
/// word, `b` in the low word. Because the pack is order-preserving
/// (`(a, b) < (c, d)` lexicographically iff `pack_edge(a, b) <
/// pack_edge(c, d)`), sorting packed edges as plain `u64`s reproduces the
/// tuple sort order exactly — which is what lets the contraction run on the
/// byte-skipping LSD radix sort ([`crate::radix_sort_u64`]).
///
/// Callers must have negotiated [`TupleWidth::Compact`] for the identifier
/// space; identifiers that do not fit a `u32` are a contract violation
/// (debug-asserted), never silently truncated — the negotiation rule routes
/// such spaces to the wide path instead.
#[inline]
pub fn pack_edge(a: usize, b: usize) -> u64 {
    debug_assert!(
        a <= u32::MAX as usize && b <= u32::MAX as usize,
        "pack_edge on identifiers outside the negotiated compact space"
    );
    ((a as u64) << 32) | (b as u64 & u64::from(u32::MAX))
}

/// Inverse of [`pack_edge`].
#[inline]
pub fn unpack_edge(packed: u64) -> (usize, usize) {
    (
        (packed >> 32) as usize,
        (packed & u64::from(u32::MAX)) as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_boundary_is_the_u32_id_space() {
        assert!(TupleWidth::negotiate(0).is_compact());
        assert!(TupleWidth::negotiate(1 << 20).is_compact());
        // n = 2^32 - 1 and n = 2^32: top ids u32::MAX - 1 / u32::MAX fit.
        assert!(TupleWidth::negotiate(u32::MAX as usize).is_compact());
        assert!(TupleWidth::negotiate(u32::MAX as usize + 1).is_compact());
        // One past the compact space: id 2^32 would not fit — wide.
        assert_eq!(
            TupleWidth::negotiate(u32::MAX as usize + 2),
            TupleWidth::Wide
        );
    }

    #[test]
    fn pack_is_order_preserving_and_round_trips() {
        let ids = [
            0usize,
            1,
            2,
            77,
            1 << 16,
            u32::MAX as usize - 1,
            u32::MAX as usize,
        ];
        let mut packed: Vec<u64> = Vec::new();
        let mut tuples: Vec<(usize, usize)> = Vec::new();
        for &a in &ids {
            for &b in &ids {
                assert_eq!(unpack_edge(pack_edge(a, b)), (a, b));
                packed.push(pack_edge(a, b));
                tuples.push((a, b));
            }
        }
        packed.sort_unstable();
        tuples.sort_unstable();
        let unpacked: Vec<(usize, usize)> = packed.into_iter().map(unpack_edge).collect();
        assert_eq!(unpacked, tuples, "u64 order must equal tuple lex order");
    }

    #[test]
    fn natural_width_matches_type_sizes() {
        assert_eq!(natural_words_per_tuple::<u64>(), 1);
        assert_eq!(natural_words_per_tuple::<(u32, u32)>(), 1);
        assert_eq!(natural_words_per_tuple::<(u64, u64)>(), 2);
        assert_eq!(natural_words_per_tuple::<(usize, usize)>(), 2);
        assert_eq!(natural_words_per_tuple::<(u64, u64, u32)>(), 3);
        assert_eq!(
            natural_words_per_tuple::<()>(),
            1,
            "zero-sized still charges a word"
        );
    }

    #[test]
    fn width_labels_and_edge_bytes() {
        assert_eq!(TupleWidth::Compact.label(), "compact-u32");
        assert_eq!(TupleWidth::Wide.label(), "wide-u64");
        assert_eq!(TupleWidth::Compact.edge_bytes(), 8);
        assert_eq!(TupleWidth::Wide.edge_bytes(), 16);
    }
}
