//! The persistent worker pool behind [`Executor`](crate::Executor)'s
//! threaded backend.
//!
//! The original threaded backend spawned fresh `std::thread::scope` threads
//! for *every* fan-out, so a pipeline run with thousands of supersteps paid
//! thread spawn + join latency thousands of times (BENCH_executor.json's
//! `adaptive_t4` row was ~18% slower than `t1` on one core for exactly that
//! reason). This module replaces that with workers that are spawned **once**
//! per pool — lazily, on the first threaded dispatch — and then park on a
//! condvar between fan-outs. A fan-out becomes: publish one job pointer,
//! bump an epoch counter, wake the parked workers.
//!
//! ## Handoff protocol
//!
//! Shared state is one mutex-guarded [`EpochState`] (`epoch`, `job`,
//! `active`, `shutdown`) plus two condvars: `work` (workers park here) and
//! `done` (the dispatcher waits here). A dispatch runs under a per-pool
//! dispatch lock (one epoch in flight at a time) and proceeds:
//!
//! 1. The dispatcher publishes `job = Some(ptr)` — a raw pointer to a
//!    stack-allocated chunk-claiming closure — bumps `epoch`, and wakes
//!    workers.
//! 2. Every participant (each woken worker, and the dispatching thread
//!    itself) runs the same closure: claim the next chunk index from an
//!    atomic cursor, execute it, place the result in that chunk's slot,
//!    repeat until the cursor is exhausted. A worker increments `active`
//!    (under the lock) *before* touching the job pointer and decrements it
//!    after.
//! 3. When the dispatcher's own claiming loop ends, it clears `job` (so no
//!    late-waking worker can grab the dead pointer) and waits on `done`
//!    until `active == 0`. Only then does the dispatch return and the
//!    closure's stack frame die — that wait is what makes the borrowed job
//!    pointer sound (see the safety comment on [`JobPtr`]).
//!
//! Each worker runs a given epoch at most once (it remembers the last epoch
//! it joined), and a worker that wakes after the job was cleared simply
//! parks again, so the protocol cannot deadlock on spurious wakeups.
//!
//! ## Determinism
//!
//! Which thread claims which chunk is timing-dependent, but every chunk's
//! *result* is placed by chunk index and read back in index order, and the
//! chunk split itself ([`Executor::worker_spans`](crate::Executor::worker_spans))
//! depends only on `n` and the thread count — so outputs are bit-identical
//! regardless of scheduling, which is the same contract the scoped backend
//! obeyed. Anything order-sensitive still happens on the dispatching thread
//! after the index-ordered fan-in.
//!
//! ## Panics
//!
//! A chunk closure that panics does not deadlock the pool: the panic payload
//! is captured (first panicking chunk wins), the cursor is exhausted so no
//! further chunks start, the epoch completes normally, and the payload is
//! re-raised on the *dispatching* thread via `resume_unwind`. The pool
//! remains usable afterwards.

use std::any::Any;
use std::cell::Cell;
use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;

use serde::Serialize;

/// How many chunks the chunked scheduler splits a fan-out into, per worker
/// thread. Oversubscribing the split (4 chunks per worker rather than 1)
/// lets fast workers claim extra chunks when per-chunk work is skewed —
/// e.g. per-machine tuple counts after an uneven shuffle — instead of
/// idling behind the slowest worker. Results are placed by chunk index, so
/// the stealing is invisible in the output.
pub const CHUNKS_PER_WORKER: usize = 4;

/// A point-in-time snapshot of a pool's telemetry counters (or of the
/// process-wide totals, via
/// [`Executor::process_pool_telemetry`](crate::Executor::process_pool_telemetry)).
/// All counters are cumulative since pool (or process) start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PoolTelemetry {
    /// OS threads ever spawned by the pool. Stays equal to the pool's
    /// thread count forever after the first threaded dispatch — that
    /// constancy is the proof that fan-outs reuse parked workers instead of
    /// spawning.
    pub spawned_threads: u64,
    /// Workers currently alive (spawned and not yet exited). Drops to zero
    /// when the owning [`Executor`](crate::Executor)'s last clone is
    /// dropped, which joins the workers.
    pub live_workers: u64,
    /// Fan-outs dispatched through the pool (one per threaded
    /// `map_*`/`run_spans` call that engaged more than one chunk).
    pub dispatches: u64,
    /// Total chunks across all dispatches.
    pub chunks_dispatched: u64,
    /// Chunks executed by a parked pool worker rather than the dispatching
    /// thread itself (the dispatcher participates in its own fan-out, so on
    /// a single core this is usually near zero — the dispatcher drains the
    /// cursor before the wakeups land).
    pub chunks_stolen: u64,
    /// Times a worker went to sleep on the work condvar.
    pub parks: u64,
    /// Times a worker woke up and joined an epoch.
    pub unparks: u64,
}

/// The telemetry counters, updated with relaxed atomics (they order nothing;
/// the handoff protocol synchronises through the state mutex).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    spawned_threads: AtomicU64,
    live_workers: AtomicU64,
    dispatches: AtomicU64,
    chunks_dispatched: AtomicU64,
    chunks_stolen: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
}

impl Counters {
    fn add(&self, field: impl Fn(&Counters) -> &AtomicU64, delta: u64) {
        field(self).fetch_add(delta, Ordering::Relaxed);
        field(&GLOBAL_COUNTERS).fetch_add(delta, Ordering::Relaxed);
    }

    fn sub(&self, field: impl Fn(&Counters) -> &AtomicU64, delta: u64) {
        field(self).fetch_sub(delta, Ordering::Relaxed);
        field(&GLOBAL_COUNTERS).fetch_sub(delta, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> PoolTelemetry {
        PoolTelemetry {
            spawned_threads: self.spawned_threads.load(Ordering::Relaxed),
            live_workers: self.live_workers.load(Ordering::Relaxed),
            dispatches: self.dispatches.load(Ordering::Relaxed),
            chunks_dispatched: self.chunks_dispatched.load(Ordering::Relaxed),
            chunks_stolen: self.chunks_stolen.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            unparks: self.unparks.load(Ordering::Relaxed),
        }
    }
}

/// Process-wide totals across every pool that ever existed, so `wcc --json`
/// can report the whole run's dispatch behaviour without threading a handle
/// through every algorithm layer.
static GLOBAL_COUNTERS: Counters = Counters {
    spawned_threads: AtomicU64::new(0),
    live_workers: AtomicU64::new(0),
    dispatches: AtomicU64::new(0),
    chunks_dispatched: AtomicU64::new(0),
    chunks_stolen: AtomicU64::new(0),
    parks: AtomicU64::new(0),
    unparks: AtomicU64::new(0),
};

/// Snapshot of the process-wide counters.
pub(crate) fn global_snapshot() -> PoolTelemetry {
    GLOBAL_COUNTERS.snapshot()
}

/// A live, pool-keeping-nothing-alive handle onto one pool's counters.
/// Obtained via
/// [`Executor::pool_telemetry_probe`](crate::Executor::pool_telemetry_probe);
/// the lifecycle tests use it to observe `live_workers` dropping to zero
/// *after* the executor (and with it the pool) has been dropped.
#[derive(Debug, Clone)]
pub struct PoolProbe(pub(crate) Arc<Counters>);

impl PoolProbe {
    /// Current counter values.
    pub fn snapshot(&self) -> PoolTelemetry {
        self.0.snapshot()
    }
}

/// The erased job: a raw pointer to the dispatcher's stack-allocated
/// chunk-claiming closure (`arg` is `true` when the caller is a parked pool
/// worker, for the `chunks_stolen` counter).
///
/// # Safety
///
/// The pointee lives on the dispatching thread's stack for the duration of
/// [`WorkerPool::run_epoch`]. It is only ever dereferenced by a worker that
/// incremented `active` under the state lock while the job was still
/// published, and `run_epoch` does not return before (a) clearing the job —
/// so no new worker can grab it — and (b) waiting for `active == 0` — so
/// every worker that did grab it has finished. The pointer therefore never
/// outlives its pointee. `Send`/`Sync` are asserted for exactly this
/// protocol-bounded use.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(bool) + Sync));

#[allow(unsafe_code)]
unsafe impl Send for JobPtr {}
#[allow(unsafe_code)]
unsafe impl Sync for JobPtr {}

/// Mutex-guarded handoff state (see the module docs for the protocol).
struct EpochState {
    /// Bumped once per dispatch; a worker joins an epoch at most once.
    epoch: u64,
    /// The published job, cleared by the dispatcher before its frame dies.
    job: Option<JobPtr>,
    /// Workers currently executing the published job.
    active: usize,
    /// Set once, by [`WorkerPool::drop`]; workers exit their loop.
    shutdown: bool,
}

struct Shared {
    state: Mutex<EpochState>,
    /// Workers park here between epochs.
    work: Condvar,
    /// The dispatcher waits here for `active == 0`.
    done: Condvar,
    counters: Arc<Counters>,
}

thread_local! {
    /// `true` while this thread is executing inside a pool epoch (as the
    /// dispatcher or as a worker). A dispatch attempted from such a thread
    /// runs inline instead — nested fan-outs stay correct (and deterministic)
    /// without the handoff protocol having to support epoch re-entrancy.
    static IN_POOL_CONTEXT: Cell<bool> = const { Cell::new(false) };
}

/// `true` if the current thread is already inside a pool epoch.
pub(crate) fn in_pool_context() -> bool {
    IN_POOL_CONTEXT.with(Cell::get)
}

/// Sets the in-epoch marker for the duration of a scope (reset on drop, so
/// a panicking chunk cannot leave the flag stuck).
struct PoolContextGuard;

impl PoolContextGuard {
    fn enter() -> Self {
        IN_POOL_CONTEXT.with(|flag| flag.set(true));
        PoolContextGuard
    }
}

impl Drop for PoolContextGuard {
    fn drop(&mut self) {
        IN_POOL_CONTEXT.with(|flag| flag.set(false));
    }
}

/// A persistent set of parked worker threads. Owned (via `Arc`) by every
/// clone of the [`Executor`](crate::Executor) that created it; dropping the
/// last owner shuts the workers down and joins them.
pub(crate) struct WorkerPool {
    threads: usize,
    shared: Arc<Shared>,
    /// Serialises dispatches: one epoch in flight per pool at a time (two
    /// user threads sharing a pool queue behind each other rather than
    /// corrupting the single job slot).
    dispatch: Mutex<()>,
    /// Worker join handles; empty until the first dispatch spawns them.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    pub(crate) fn new(threads: usize) -> Self {
        WorkerPool {
            threads,
            shared: Arc::new(Shared {
                state: Mutex::new(EpochState {
                    epoch: 0,
                    job: None,
                    active: 0,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
                counters: Arc::new(Counters::default()),
            }),
            dispatch: Mutex::new(()),
            handles: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn counters(&self) -> Arc<Counters> {
        Arc::clone(&self.shared.counters)
    }

    /// Spawns the workers if this is the first dispatch. Called with the
    /// dispatch lock held, so the check-then-spawn cannot race.
    fn ensure_spawned(&self) {
        let mut handles = self.handles.lock().expect("pool handle table poisoned");
        if !handles.is_empty() {
            return;
        }
        let counters = &self.shared.counters;
        counters.add(|c| &c.spawned_threads, self.threads as u64);
        counters.add(|c| &c.live_workers, self.threads as u64);
        for i in 0..self.threads {
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("wcc-pool-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("cannot spawn pool worker");
            handles.push(handle);
        }
    }

    /// Runs `g` once per chunk index in `0..n`, claiming chunks dynamically
    /// across the parked workers and the calling thread, and returns the
    /// results in chunk-index order. Panics from `g` are re-raised here, on
    /// the calling thread, after the epoch has fully quiesced.
    pub(crate) fn run_chunks<U, G>(&self, n: usize, g: G) -> Vec<U>
    where
        U: Send,
        G: Fn(usize) -> U + Sync,
    {
        // One slot per chunk; each chunk index is claimed exactly once, so
        // each slot is written at most once. `Mutex<Option<U>>` (rather than
        // raw disjoint writes) keeps this file's unsafe surface confined to
        // the job pointer; the per-chunk lock is uncontended by construction
        // and amortised over a whole chunk of real work.
        let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let counters = &self.shared.counters;
        let task = |is_worker: bool| {
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if is_worker {
                    counters.add(|c| &c.chunks_stolen, 1);
                }
                match catch_unwind(AssertUnwindSafe(|| g(i))) {
                    Ok(value) => {
                        *results[i].lock().expect("chunk slot poisoned") = Some(value);
                    }
                    Err(payload) => {
                        first_panic
                            .lock()
                            .expect("panic slot poisoned")
                            .get_or_insert(payload);
                        // Exhaust the cursor: no further chunks start, the
                        // epoch winds down, the payload re-raises below.
                        cursor.store(n, Ordering::Relaxed);
                        break;
                    }
                }
            }
        };
        self.run_epoch(n, &task);
        if let Some(payload) = first_panic.into_inner().expect("panic slot poisoned") {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("chunk slot poisoned")
                    .expect("every chunk was claimed and completed")
            })
            .collect()
    }

    /// One epoch of the handoff protocol (module docs): publish, wake,
    /// participate, quiesce.
    fn run_epoch(&self, chunks: usize, task: &(dyn Fn(bool) + Sync)) {
        let _dispatch = self.dispatch.lock().expect("pool dispatch lock poisoned");
        self.ensure_spawned();
        let counters = &self.shared.counters;
        counters.add(|c| &c.dispatches, 1);
        counters.add(|c| &c.chunks_dispatched, chunks as u64);
        // SAFETY: pure lifetime erasure — the borrowed closure is published
        // as a `'static`-typed raw pointer, but the protocol (FinishGuard
        // below: clear job, wait for `active == 0`) guarantees no worker
        // holds the pointer after this function returns, i.e. within the
        // real lifetime of `task`. See `JobPtr`.
        #[allow(unsafe_code)]
        let erased: &'static (dyn Fn(bool) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(bool) + Sync), &'static (dyn Fn(bool) + Sync)>(task)
        };
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.epoch = st.epoch.wrapping_add(1);
            st.job = Some(JobPtr(erased as *const (dyn Fn(bool) + Sync)));
        }
        // The dispatcher claims chunks too, so it only needs helpers for
        // the chunks it cannot take first.
        if chunks > self.threads {
            self.shared.work.notify_all();
        } else {
            for _ in 0..chunks.saturating_sub(1) {
                self.shared.work.notify_one();
            }
        }
        // Quiesce even if `task` somehow unwinds (it catches chunk panics
        // itself, but the job pointer's soundness must not depend on that).
        struct FinishGuard<'a>(&'a Shared);
        impl Drop for FinishGuard<'_> {
            fn drop(&mut self) {
                let mut st = self.0.state.lock().expect("pool state poisoned");
                st.job = None;
                while st.active > 0 {
                    st = self.0.done.wait(st).expect("pool state poisoned");
                }
            }
        }
        let finish = FinishGuard(&self.shared);
        {
            let _ctx = PoolContextGuard::enter();
            task(false);
        }
        drop(finish);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        let handles =
            std::mem::take(&mut *self.handles.lock().expect("pool handle table poisoned"));
        for handle in handles {
            // A worker's loop body cannot panic (chunk panics are caught in
            // `run_chunks`), so join errors are not expected; propagating
            // one from Drop would abort, so record nothing and move on.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let counters = Arc::clone(&shared.counters);
    let mut last_seen_epoch = 0u64;
    let mut st = shared.state.lock().expect("pool state poisoned");
    loop {
        if st.shutdown {
            break;
        }
        if let Some(job) = st.job {
            if st.epoch != last_seen_epoch {
                last_seen_epoch = st.epoch;
                st.active += 1;
                drop(st);
                counters.add(|c| &c.unparks, 1);
                {
                    let _ctx = PoolContextGuard::enter();
                    // SAFETY: `job` was published in the state mutex and we
                    // incremented `active` under that same lock before
                    // dereferencing; the dispatcher's `FinishGuard` waits for
                    // `active == 0` before the pointee's frame dies (see
                    // `JobPtr`). The closure never unwinds (chunk panics are
                    // caught inside it), so `active` is always decremented.
                    #[allow(unsafe_code)]
                    unsafe {
                        (*job.0)(true);
                    }
                }
                st = shared.state.lock().expect("pool state poisoned");
                st.active -= 1;
                if st.active == 0 {
                    shared.done.notify_all();
                }
                continue;
            }
        }
        counters.add(|c| &c.parks, 1);
        st = shared.work.wait(st).expect("pool state poisoned");
    }
    drop(st);
    counters.sub(|c| &c.live_workers, 1);
}

/// Shared-pool registry: executors resolved independently but with the same
/// thread count (an `MpcContext` and a `Cluster` built from the same config,
/// say) reuse one pool instead of spawning workers each. Entries are weak —
/// the registry keeps no pool alive, so dropping the last owning executor
/// still joins the workers. [`Executor::with_private_pool`]
/// (crate::Executor::with_private_pool) bypasses this registry for tests
/// that must observe one pool exclusively.
static REGISTRY: Mutex<Option<HashMap<usize, Weak<WorkerPool>>>> = Mutex::new(None);

/// Fetches (or creates) the shared pool for `threads` workers.
pub(crate) fn obtain_shared(threads: usize) -> Arc<WorkerPool> {
    let mut guard = REGISTRY.lock().expect("pool registry poisoned");
    let registry = guard.get_or_insert_with(HashMap::new);
    if let Some(pool) = registry.get(&threads).and_then(Weak::upgrade) {
        return pool;
    }
    let pool = Arc::new(WorkerPool::new(threads));
    registry.insert(threads, Arc::downgrade(&pool));
    pool
}

/// Splits `0..n` into `chunks` contiguous, ascending, disjoint ranges
/// covering it exactly (the last ranges may be one shorter). Shared by the
/// executor's span computation; deterministic in its arguments.
pub(crate) fn split_ranges(n: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.clamp(1, n.max(1));
    let chunk = n.div_ceil(chunks).max(1);
    (0..chunks)
        .map(|c| (c * chunk).min(n)..((c + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}
