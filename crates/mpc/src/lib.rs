//! A simulator for the Massively Parallel Computation (MPC) model of
//! Beame–Koutris–Suciu / Karloff–Suri–Vassilvitskii, as used by
//! Assadi–Sun–Weinstein (PODC 2019).
//!
//! The MPC model the paper adopts (Section 1, "Massively Parallel Computation
//! Model") has three resources:
//!
//! * **memory per machine** `s` — for the sparse connectivity problem the
//!   interesting regime is `s = n^δ` for a constant `δ > 0`;
//! * **number of machines**, with total memory ideally `Õ(N)`;
//! * **rounds**: per round each machine computes locally on the tuples it
//!   holds, then machines exchange messages, each machine sending and
//!   receiving at most `s` words.
//!
//! This crate simulates that model inside a single process so the resources
//! can be *measured exactly*:
//!
//! * [`MpcConfig`] fixes `s`, the machine count and `δ`.
//! * [`MpcContext`] is the accounting layer — algorithms charge rounds,
//!   shuffled words and per-machine residency against it, phase by phase, at
//!   exactly the costs the paper assigns to each primitive (a shuffle is one
//!   round; a Goodrich sort/search over `N` items is `O(log_s N)` rounds; a
//!   pointer-doubling step is one sort/search batch, …).
//! * [`Cluster`] is the execution layer — an actual tuple store partitioned
//!   across simulated machines with `map`/`shuffle`/`broadcast` supersteps
//!   that *enforce* the memory budget, used to validate the primitives and to
//!   run the baselines end-to-end.
//!
//! Wall-clock time plays no role: the reproduced quantities are rounds and
//! memory, which is what the paper's theorems bound.
//!
//! ```
//! use wcc_mpc::prelude::*;
//!
//! // 10_000 words of input, memory per machine ~ N^0.5.
//! let config = MpcConfig::for_input_size(10_000, 0.5);
//! let mut ctx = MpcContext::new(config);
//! ctx.begin_phase("sort");
//! ctx.charge_sort(10_000);
//! ctx.end_phase();
//! assert!(ctx.stats().total_rounds() >= 1);
//! ```

// Unsafe is denied crate-wide; the two exceptions are the `arena` module,
// whose move/scatter primitives (the parallel scatter of the counting
// shuffle, the consuming local ops) need raw-pointer writes into disjoint
// positions of a preallocated buffer, and the `pool` module, whose persistent
// worker pool hands a borrowed job closure to parked threads through a raw
// pointer whose lifetime is bounded by the dispatch protocol. Every unsafe
// block in both carries its soundness argument.
#![deny(unsafe_code)]
#![warn(missing_docs)]

#[allow(unsafe_code)]
mod arena;
pub mod cluster;
pub mod compact;
pub mod config;
pub mod executor;
pub mod histogram;
#[allow(unsafe_code)]
pub mod pool;
pub mod primitives;
mod radix;
pub mod stats;
pub mod stream;
pub mod walkstats;

pub use crate::cluster::{Cluster, KeyedTuple};
pub use crate::compact::{
    natural_words_per_tuple, pack_edge, unpack_edge, CompactVertex, TupleWidth, WORD_BYTES,
};
pub use crate::config::{MpcConfig, MpcError};
pub use crate::executor::{derive_stream_seed, Executor, ExecutorBackend, THREADS_ENV_VAR};
pub use crate::histogram::{HistogramSummary, LogHistogram, HISTOGRAM_BUCKETS};
pub use crate::pool::{PoolProbe, PoolTelemetry, CHUNKS_PER_WORKER};
pub use crate::radix::radix_sort_u64;
pub use crate::stats::{MpcContext, PhaseStats, RoundStats, WorkerStats};
pub use crate::walkstats::{record_walk_telemetry, walk_telemetry_snapshot, WalkTelemetry};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::cluster::{Cluster, KeyedTuple};
    pub use crate::compact::{natural_words_per_tuple, CompactVertex, TupleWidth};
    pub use crate::config::{MpcConfig, MpcError};
    pub use crate::executor::{derive_stream_seed, Executor, ExecutorBackend};
    pub use crate::stats::{MpcContext, PhaseStats, RoundStats, WorkerStats};
}
