//! Log-bucketed latency histogram: power-of-two buckets, lock-free
//! recording, no dependencies.
//!
//! The component-query service records one latency sample per request on
//! its hot path, from many connection threads at once, at rates past 10⁵
//! samples/s — so the recorder must be wait-free and allocation-free. A
//! [`LogHistogram`] is a fixed array of relaxed [`AtomicU64`] counters,
//! bucket `i` covering durations in `[2^i, 2^{i+1})` nanoseconds: recording
//! is one leading-zeros instruction plus one relaxed fetch-add, and reading
//! is an inconsistent-but-monotone sweep (each counter is exact; a sweep
//! concurrent with writers may miss in-flight samples, which is fine for
//! telemetry — the same contract as [`crate::PoolTelemetry`]).
//!
//! Percentiles come out as the *upper bound* of the bucket holding the
//! requested rank, so a reported p99 is conservative: at most one power of
//! two above the true sample. That resolution (±2×) is exactly what a
//! latency SLO needs — the interesting question is "µs or ms", not the
//! third significant digit — and it is what lets the histogram be shared
//! verbatim between the server's stats reply, `wcc serve --json` and
//! `wcc_loadgen`'s client-side report: 48 counters travel as 48 words on
//! the wire, and merging two histograms is element-wise addition.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// Number of power-of-two buckets. Bucket 47 covers `[2^47, ∞)` ns — about
/// 39 hours — so no realistic latency saturates the top bucket's meaning.
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A fixed-size power-of-two-bucket histogram of `u64` samples
/// (conventionally nanoseconds), safe to record into from many threads.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The index of the bucket covering `value`: `floor(log2(max(value, 1)))`,
/// clamped to the top bucket.
fn bucket_index(value: u64) -> usize {
    (63 - (value | 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// The exclusive upper bound of bucket `i` in sample units (`2^{i+1}`,
/// saturating for the top bucket).
fn bucket_upper_bound(i: usize) -> u64 {
    1u64.checked_shl(i as u32 + 1).unwrap_or(u64::MAX)
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one sample. Wait-free: one relaxed fetch-add.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Current per-bucket counts (a concurrent sweep may miss samples still
    /// in flight; each counter read is itself exact).
    pub fn counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Adds previously captured counts (e.g. a histogram shipped over the
    /// wire) into this one.
    pub fn absorb_counts(&self, counts: &[u64]) {
        for (bucket, &count) in self.buckets.iter().zip(counts) {
            if count > 0 {
                bucket.fetch_add(count, Ordering::Relaxed);
            }
        }
    }

    /// A point-in-time summary with conservative percentiles.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary::from_counts(&self.counts())
    }
}

/// An immutable snapshot of a [`LogHistogram`] with derived percentiles.
/// Serializes into the `--json` records of `wcc serve` and `wcc_loadgen`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSummary {
    /// Total samples recorded.
    pub count: u64,
    /// Conservative (bucket-upper-bound) 50th percentile, in sample units.
    pub p50: u64,
    /// Conservative 99th percentile.
    pub p99: u64,
    /// Conservative 99.9th percentile.
    pub p999: u64,
    /// Conservative maximum (upper bound of the highest non-empty bucket).
    pub max: u64,
    /// Raw per-bucket counts; bucket `i` covers `[2^i, 2^{i+1})`.
    pub buckets: Vec<u64>,
}

impl HistogramSummary {
    /// Builds a summary from raw bucket counts (length up to
    /// [`HISTOGRAM_BUCKETS`]; shorter slices are zero-extended).
    pub fn from_counts(counts: &[u64]) -> Self {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        buckets[..counts.len().min(HISTOGRAM_BUCKETS)]
            .copy_from_slice(&counts[..counts.len().min(HISTOGRAM_BUCKETS)]);
        let count: u64 = buckets.iter().sum();
        let max = buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_upper_bound);
        let percentile = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the requested percentile, 1-based: the smallest bucket
            // whose cumulative count reaches it bounds the sample above.
            let rank = ((count as f64) * p).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper_bound(i);
                }
            }
            max
        };
        HistogramSummary {
            count,
            p50: percentile(0.50),
            p99: percentile(0.99),
            p999: percentile(0.999),
            max,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 2);
        assert_eq!(bucket_upper_bound(10), 2048);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), 1 << 48);
    }

    #[test]
    fn percentiles_are_conservative_upper_bounds() {
        let h = LogHistogram::new();
        // 99 samples at ~1µs (bucket 9: 512..1024) and 1 at ~1ms
        // (bucket 19: 524288..1048576).
        for _ in 0..99 {
            h.record(700);
        }
        h.record(700_000);
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 1024);
        // p99 rank is 99, still inside the 700ns pile.
        assert_eq!(s.p99, 1024);
        assert_eq!(s.p999, 1 << 20);
        assert_eq!(s.max, 1 << 20);
        // The true samples are below the reported bounds.
        assert!(700 < s.p50 && 700_000 < s.p999);
    }

    #[test]
    fn empty_and_single_sample_summaries() {
        let h = LogHistogram::new();
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.p99, s.max), (0, 0, 0, 0));
        h.record(5);
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.p99, s.max), (1, 8, 8, 8));
    }

    #[test]
    fn absorb_counts_matches_recording_directly() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        for v in [1u64, 10, 100, 1000, 10_000, 100_000] {
            a.record(v);
            b.record(v);
            b.record(v);
        }
        let merged = LogHistogram::new();
        merged.absorb_counts(&a.counts());
        merged.absorb_counts(&a.counts());
        assert_eq!(merged.counts(), b.counts());
        assert_eq!(merged.summary(), b.summary());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i * 7 + t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.summary().count, 40_000);
    }
}
