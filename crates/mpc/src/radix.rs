//! Sort-based grouping scratch for the data plane.
//!
//! `reduce_by_key`'s combiner passes and partial merges used to funnel every
//! tuple through a per-machine `HashMap`. This module replaces that with the
//! classic cache-friendly alternative: an **8-bit LSD radix argsort** of the
//! tuple keys followed by a linear scan over equal-key runs. The sort is
//! stable, so equal keys keep their arrival order and the fold order — and
//! therefore every output — is bit-identical to the hash-based reference
//! ([`Cluster::reduce_by_key_hashmap`](crate::Cluster::reduce_by_key_hashmap)
//! retains it as the executable spec).
//!
//! All buffers live in [`RadixScratch`] / [`ShuffleScratch`] instances owned
//! by the [`MpcContext`](crate::MpcContext), so successive shuffles and
//! reductions on the same context reuse their allocations instead of paying
//! for fresh histograms, cursor tables and key caches every round.

use std::sync::Mutex;

/// Reusable buffers for one worker's radix argsorts: the cached key of every
/// element (computed once, reused by every byte pass), the index permutation
/// being built, a pair buffer for the small-input comparison path, and a
/// visited bitmap for applying the permutation in place.
#[derive(Default)]
pub(crate) struct RadixScratch {
    keys: Vec<u64>,
    order: Vec<usize>,
    tmp: Vec<usize>,
    pairs: Vec<(u64, usize)>,
    visited: Vec<bool>,
}

/// Below this many elements a comparison sort of `(key, index)` pairs beats
/// the radix passes (each non-constant byte pass pays a 256-counter
/// histogram reset regardless of `n`).
const SMALL_SORT_THRESHOLD: usize = 128;

impl RadixScratch {
    /// Caches `key_of(i)` for `i in 0..n` and computes the stable ascending
    /// argsort of the keys: afterwards [`RadixScratch::order`] lists the
    /// indices in key order, equal keys in original index order.
    ///
    /// Two fast paths keep small and low-entropy inputs cheap: inputs under
    /// [`SMALL_SORT_THRESHOLD`] take an in-place comparison sort of
    /// `(key, index)` pairs (lexicographic order on distinct indices *is*
    /// the stable order), and byte positions on which every key agrees —
    /// detected upfront from the AND/OR of all keys, without building a
    /// histogram — are skipped entirely. Typical reduce keys are small
    /// integers, so usually only one or two of the eight passes run.
    pub fn argsort_by<F: FnMut(usize) -> u64>(&mut self, n: usize, mut key_of: F) {
        self.keys.clear();
        self.keys.reserve(n);
        let mut all_and = u64::MAX;
        let mut all_or = 0u64;
        for i in 0..n {
            let k = key_of(i);
            all_and &= k;
            all_or |= k;
            self.keys.push(k);
        }
        self.order.clear();
        if n <= SMALL_SORT_THRESHOLD {
            self.pairs.clear();
            self.pairs.extend(self.keys.iter().copied().zip(0..n));
            self.pairs.sort_unstable();
            self.order.extend(self.pairs.iter().map(|&(_, i)| i));
            return;
        }
        self.order.extend(0..n);
        self.tmp.clear();
        self.tmp.resize(n, 0);
        // `all_and`/`all_or` agree on a byte exactly when every key carries
        // the same value there — such passes cannot reorder anything.
        let varying = all_and ^ all_or;
        for pass in 0..8u32 {
            let shift = pass * 8;
            if (varying >> shift) & 0xFF == 0 {
                continue;
            }
            let mut hist = [0usize; 256];
            for &i in &self.order {
                hist[((self.keys[i] >> shift) & 0xFF) as usize] += 1;
            }
            let mut sum = 0usize;
            for h in hist.iter_mut() {
                let count = *h;
                *h = sum;
                sum += count;
            }
            for &i in &self.order {
                let b = ((self.keys[i] >> shift) & 0xFF) as usize;
                self.tmp[hist[b]] = i;
                hist[b] += 1;
            }
            std::mem::swap(&mut self.order, &mut self.tmp);
        }
    }

    /// The index permutation produced by the last [`RadixScratch::argsort_by`].
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The key at sorted position `j` (i.e. `keys[order[j]]`).
    pub fn sorted_key(&self, j: usize) -> u64 {
        self.keys[self.order[j]]
    }

    /// Permutes `buf` into the last argsort's order in place
    /// (`buf[j] <- old buf[order[j]]`) by following permutation cycles with
    /// swaps — no per-element clone, no staging buffer. Used by the consuming
    /// reduce path, which must hand tuples to the fold *by value* in sorted
    /// order.
    pub fn apply_order_to<T>(&mut self, buf: &mut [T]) {
        let n = buf.len();
        debug_assert_eq!(n, self.order.len(), "argsort the buffer first");
        self.visited.clear();
        self.visited.resize(n, false);
        for start in 0..n {
            if self.visited[start] {
                continue;
            }
            let mut j = start;
            loop {
                self.visited[j] = true;
                let src = self.order[j];
                if src == start {
                    break;
                }
                buf.swap(j, src);
                j = src;
            }
        }
    }
}

/// Sorts `keys` ascending in place with the same 8-bit LSD strategy as
/// [`RadixScratch::argsort_by`]: byte positions on which every key agrees
/// (found from one AND/OR sweep) are skipped, so keys packed from small
/// integers — the compact `(part_a << 32) | part_b` edge encoding of the
/// contraction paths — pay only for the bytes that actually vary. `scratch`
/// is the ping-pong buffer; callers that sort repeatedly should reuse it.
///
/// For `u64` keys LSD radix and `sort_unstable` produce the same sequence
/// (a total order leaves nothing for stability to distinguish), so this is a
/// drop-in, bit-identical replacement for `Vec::sort_unstable` — small
/// inputs simply take that comparison path directly.
pub fn radix_sort_u64(keys: &mut Vec<u64>, scratch: &mut Vec<u64>) {
    let n = keys.len();
    if n < 4 * SMALL_SORT_THRESHOLD {
        keys.sort_unstable();
        return;
    }
    let mut all_and = u64::MAX;
    let mut all_or = 0u64;
    for &k in keys.iter() {
        all_and &= k;
        all_or |= k;
    }
    let varying = all_and ^ all_or;
    if varying == 0 {
        return;
    }
    scratch.clear();
    scratch.resize(n, 0);
    let mut in_keys = true;
    for pass in 0..8u32 {
        let shift = pass * 8;
        if (varying >> shift) & 0xFF == 0 {
            continue;
        }
        let (src, dst): (&[u64], &mut [u64]) = if in_keys {
            (keys, scratch)
        } else {
            (scratch, keys)
        };
        let mut hist = [0usize; 256];
        for &k in src {
            hist[((k >> shift) & 0xFF) as usize] += 1;
        }
        let mut sum = 0usize;
        for h in hist.iter_mut() {
            let count = *h;
            *h = sum;
            sum += count;
        }
        for &k in src {
            let b = ((k >> shift) & 0xFF) as usize;
            dst[hist[b]] = k;
            hist[b] += 1;
        }
        in_keys = !in_keys;
    }
    if !in_keys {
        std::mem::swap(keys, scratch);
    }
}

/// The per-context scratch pool reused across successive `shuffle_by_key` /
/// `reduce_by_key` calls: tuple destinations, per-worker destination
/// histograms and write-cursor tables (both worker-major, stride = number of
/// machines), and one [`RadixScratch`] per worker (behind uncontended
/// mutexes, since each worker only ever locks its own slot).
///
/// Semantically transparent: the buffers carry no state between calls beyond
/// their capacity, so `Clone` deliberately produces a cold (empty) scratch —
/// cloned contexts stay cheap — and `Debug` prints only capacities.
#[derive(Default)]
pub(crate) struct ShuffleScratch {
    /// Destination machine of every tuple (counting pass → scatter pass, so
    /// the scatter never recomputes `key(t)`).
    pub(crate) dests: Vec<usize>,
    /// Per-worker destination histograms, worker-major.
    pub(crate) histograms: Vec<usize>,
    /// Per-worker exclusive-prefix-sum write cursors, worker-major.
    pub(crate) cursors: Vec<usize>,
    /// Per-worker radix scratch for sort-based reductions.
    pub(crate) radix: Vec<Mutex<RadixScratch>>,
}

impl ShuffleScratch {
    /// Ensures at least `workers` radix slots exist and returns the pool.
    /// Worker `w` locks slot `w` (never another), so the mutexes are
    /// uncontended and exist only to satisfy the `Fn` fan-out closures.
    pub(crate) fn radix_pool(&mut self, workers: usize) -> &[Mutex<RadixScratch>] {
        if self.radix.len() < workers {
            self.radix.resize_with(workers, Default::default);
        }
        &self.radix[..workers]
    }
}

impl Clone for ShuffleScratch {
    fn clone(&self) -> Self {
        ShuffleScratch::default()
    }
}

impl std::fmt::Debug for ShuffleScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShuffleScratch")
            .field("dests_capacity", &self.dests.capacity())
            .field("histograms_capacity", &self.histograms.capacity())
            .field("cursors_capacity", &self.cursors.capacity())
            .field("radix_workers", &self.radix.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argsort_is_stable_and_ascending() {
        let keys = [5u64, 1, 5, 0, 1 << 40, 1, 5];
        let mut scratch = RadixScratch::default();
        scratch.argsort_by(keys.len(), |i| keys[i]);
        // Ascending by key; ties in original index order.
        assert_eq!(scratch.order(), &[3, 1, 5, 0, 2, 6, 4]);
        for j in 0..keys.len() {
            assert_eq!(scratch.sorted_key(j), keys[scratch.order()[j]]);
        }
    }

    #[test]
    fn argsort_matches_std_stable_sort_on_adversarial_keys() {
        // Keys touching every byte, with duplicates.
        let keys: Vec<u64> = (0..2000u64)
            .map(|i| {
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left((i % 64) as u32)
                    % 777
            })
            .collect();
        let mut scratch = RadixScratch::default();
        scratch.argsort_by(keys.len(), |i| keys[i]);
        let mut expected: Vec<usize> = (0..keys.len()).collect();
        expected.sort_by_key(|&i| keys[i]); // std stable sort = the spec
        assert_eq!(scratch.order(), &expected[..]);
    }

    #[test]
    fn comparison_and_radix_paths_agree_around_the_threshold() {
        for n in [
            SMALL_SORT_THRESHOLD - 1,
            SMALL_SORT_THRESHOLD,
            SMALL_SORT_THRESHOLD + 1,
            400,
        ] {
            let keys: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(97) % 53).collect();
            let mut scratch = RadixScratch::default();
            scratch.argsort_by(n, |i| keys[i]);
            let mut expected: Vec<usize> = (0..n).collect();
            expected.sort_by_key(|&i| keys[i]);
            assert_eq!(scratch.order(), &expected[..], "n={n}");
        }
    }

    #[test]
    fn scratch_reuse_across_calls_is_clean() {
        let mut scratch = RadixScratch::default();
        scratch.argsort_by(5, |i| (5 - i) as u64);
        assert_eq!(scratch.order(), &[4, 3, 2, 1, 0]);
        scratch.argsort_by(3, |i| i as u64);
        assert_eq!(scratch.order(), &[0, 1, 2]);
        scratch.argsort_by(0, |_| 0);
        assert!(scratch.order().is_empty());
    }

    #[test]
    fn apply_order_permutes_in_place() {
        let keys = [3u64, 1, 2, 1, 0];
        let mut buf: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
        let mut scratch = RadixScratch::default();
        scratch.argsort_by(keys.len(), |i| keys[i]);
        scratch.apply_order_to(&mut buf);
        assert_eq!(buf, vec!["0", "1", "1", "2", "3"]);
        // Ties kept arrival order: the first "1" is the one from index 1.
        assert_eq!(scratch.order()[1], 1);
        assert_eq!(scratch.order()[2], 3);
    }

    #[test]
    fn radix_sort_u64_matches_sort_unstable() {
        for n in [
            0usize,
            1,
            7,
            4 * SMALL_SORT_THRESHOLD - 1,
            4 * SMALL_SORT_THRESHOLD,
            5000,
        ] {
            let mut keys: Vec<u64> = (0..n as u64)
                .map(|i| {
                    // Packed-edge-shaped keys: two small halves, with dups.
                    let a = i.wrapping_mul(0x9E37_79B9) % 300;
                    let b = i.wrapping_mul(0x85EB_CA6B) % 300;
                    (a.min(b) << 32) | a.max(b)
                })
                .collect();
            let mut expected = keys.clone();
            expected.sort_unstable();
            let mut scratch = Vec::new();
            radix_sort_u64(&mut keys, &mut scratch);
            assert_eq!(keys, expected, "n={n}");
        }
    }

    #[test]
    fn radix_sort_u64_handles_constant_and_full_width_keys() {
        let mut constant = vec![42u64; 4 * SMALL_SORT_THRESHOLD + 3];
        let mut scratch = Vec::new();
        radix_sort_u64(&mut constant, &mut scratch);
        assert!(constant.iter().all(|&k| k == 42));

        let mut wide: Vec<u64> = (0..3000u64)
            .map(|i| {
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left((i % 64) as u32)
            })
            .collect();
        let mut expected = wide.clone();
        expected.sort_unstable();
        radix_sort_u64(&mut wide, &mut scratch);
        assert_eq!(wide, expected);
        // Scratch is reusable across calls.
        let mut again: Vec<u64> = (0..2000u64).rev().collect();
        radix_sort_u64(&mut again, &mut scratch);
        assert!(again.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn shuffle_scratch_clone_is_cold() {
        let mut s = ShuffleScratch::default();
        s.dests.extend([1, 2, 3]);
        let _ = s.radix_pool(4);
        let c = s.clone();
        assert!(c.dests.is_empty());
        assert!(c.radix.is_empty());
        assert!(format!("{s:?}").contains("radix_workers"));
    }
}
