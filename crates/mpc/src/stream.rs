//! Executor-driven ingestion of binary edge-chunk streams.
//!
//! The binary chunk format (`wcc_graph::io`, magic `WCCS`) frames a batch
//! schedule as independently decodable payloads precisely so that a cluster
//! can decode them in parallel: the sequential part of ingestion is only the
//! framing scan ([`wcc_graph::io::read_chunk_frames`]), after which each
//! payload is a pure function of its bytes. This module fans that decode out
//! through an [`Executor`] — one work unit per chunk, results reassembled in
//! chunk order, the first malformed chunk (in *chunk index* order, never in
//! completion order) reported as the error. Both properties follow from
//! [`Executor::map_items`]'s index-ordered fan-in, so the decode obeys the
//! workspace determinism contract: bit-identical output and error selection
//! for every thread count.

use crate::executor::Executor;

use wcc_graph::io::{decode_edge_chunk, read_chunk_frames, IoError};

/// Decodes framed chunk payloads into edge batches in parallel, one work
/// unit per chunk, via `exec`. Output order matches frame order; on failure
/// the error for the lowest-indexed malformed chunk is returned regardless
/// of the thread count.
///
/// # Errors
///
/// Returns the first (by chunk index) [`IoError`] produced by
/// [`decode_edge_chunk`].
pub fn decode_edge_chunks(
    frames: &[Vec<u8>],
    exec: &Executor,
) -> Result<Vec<Vec<(u64, u64)>>, IoError> {
    exec.map_items(frames, |i, frame| decode_edge_chunk(i, frame))
        .into_iter()
        .collect()
}

/// Reads a whole binary chunk stream with parallel per-chunk decode:
/// sequential framing, then [`decode_edge_chunks`] through `exec`.
///
/// # Errors
///
/// See [`wcc_graph::io::read_chunk_frames`] and [`decode_edge_chunks`].
pub fn read_edge_chunks_parallel<R: std::io::Read>(
    reader: R,
    exec: &Executor,
) -> Result<Vec<Vec<(u64, u64)>>, IoError> {
    let frames = read_chunk_frames(reader)?;
    decode_edge_chunks(&frames, exec)
}

/// File-path convenience wrapper around [`read_edge_chunks_parallel`].
///
/// # Errors
///
/// See [`read_edge_chunks_parallel`].
pub fn read_edge_chunks_file_parallel(
    path: &std::path::Path,
    exec: &Executor,
) -> Result<Vec<Vec<(u64, u64)>>, IoError> {
    read_edge_chunks_parallel(
        std::io::BufReader::new(std::fs::File::open(path).map_err(IoError::Io)?),
        exec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcc_graph::io::write_edge_chunks;

    fn sample_chunks() -> Vec<Vec<(u64, u64)>> {
        (0..20u64)
            .map(|c| (0..(c % 5) * 30).map(|i| (c * 1000 + i, i)).collect())
            .collect()
    }

    #[test]
    fn parallel_decode_matches_sequential_for_every_thread_count() {
        let chunks = sample_chunks();
        let mut buf = Vec::new();
        write_edge_chunks(&chunks, &mut buf).unwrap();
        let sequential = wcc_graph::io::read_edge_chunks(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(sequential, chunks);
        for threads in [1usize, 2, 8] {
            let exec = Executor::threaded(threads);
            let parallel = read_edge_chunks_parallel(std::io::Cursor::new(&buf), &exec).unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn decode_error_selection_is_deterministic_across_thread_counts() {
        // Frames 3 and 7 are malformed; the error must always name chunk 3.
        let mut frames: Vec<Vec<u8>> = (0..10u64)
            .map(|c| {
                (0..4u64)
                    .flat_map(|i| {
                        let mut b = c.to_le_bytes().to_vec();
                        b.extend_from_slice(&i.to_le_bytes());
                        b
                    })
                    .collect()
            })
            .collect();
        frames[3].pop();
        frames[7].pop();
        for threads in [1usize, 2, 8] {
            let exec = Executor::threaded(threads);
            let err = decode_edge_chunks(&frames, &exec).unwrap_err();
            assert!(
                matches!(err, IoError::Corrupt { chunk: 3, .. }),
                "threads={threads}: got {err}"
            );
        }
    }

    #[test]
    fn empty_frame_list_decodes_to_nothing() {
        let exec = Executor::threaded(4);
        assert!(decode_edge_chunks(&[], &exec).unwrap().is_empty());
    }
}
