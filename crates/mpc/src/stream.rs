//! Executor-driven ingestion of binary edge-chunk streams.
//!
//! The binary chunk format (`wcc_graph::io`, magic `WCCS`) frames a batch
//! schedule as independently decodable payloads precisely so that a cluster
//! can decode them in parallel: the sequential part of ingestion is only the
//! framing scan ([`wcc_graph::io::read_chunk_frames`]), after which each
//! payload is a pure function of its bytes. This module fans that decode out
//! through an [`Executor`] — one work unit per chunk, results reassembled in
//! chunk order, the first malformed chunk (in *chunk index* order, never in
//! completion order) reported as the error. Both properties follow from
//! [`Executor::map_items`]'s index-ordered fan-in, so the decode obeys the
//! workspace determinism contract: bit-identical output and error selection
//! for every thread count.

use crate::executor::Executor;

use wcc_graph::io::{
    decode_edge_chunk, decode_op_chunk, read_chunk_frames, read_op_chunk_frames, EdgeOp, IoError,
};

/// Decodes framed chunk payloads into edge batches in parallel, one work
/// unit per chunk, via `exec`. Output order matches frame order; on failure
/// the error for the lowest-indexed malformed chunk is returned regardless
/// of the thread count.
///
/// # Errors
///
/// Returns the first (by chunk index) [`IoError`] produced by
/// [`decode_edge_chunk`].
pub fn decode_edge_chunks(
    frames: &[Vec<u8>],
    exec: &Executor,
) -> Result<Vec<Vec<(u64, u64)>>, IoError> {
    exec.map_items(frames, |i, frame| decode_edge_chunk(i, frame))
        .into_iter()
        .collect()
}

/// Reads a whole binary chunk stream with parallel per-chunk decode:
/// sequential framing, then [`decode_edge_chunks`] through `exec`.
///
/// # Errors
///
/// See [`wcc_graph::io::read_chunk_frames`] and [`decode_edge_chunks`].
pub fn read_edge_chunks_parallel<R: std::io::Read>(
    reader: R,
    exec: &Executor,
) -> Result<Vec<Vec<(u64, u64)>>, IoError> {
    let frames = read_chunk_frames(reader)?;
    decode_edge_chunks(&frames, exec)
}

/// File-path convenience wrapper around [`read_edge_chunks_parallel`].
///
/// # Errors
///
/// See [`read_edge_chunks_parallel`].
pub fn read_edge_chunks_file_parallel(
    path: &std::path::Path,
    exec: &Executor,
) -> Result<Vec<Vec<(u64, u64)>>, IoError> {
    read_edge_chunks_parallel(
        std::io::BufReader::new(std::fs::File::open(path).map_err(IoError::Io)?),
        exec,
    )
}

/// Decodes framed turnstile chunk payloads into op batches in parallel — the
/// op-aware counterpart of [`decode_edge_chunks`], with the same determinism
/// contract: output order matches frame order and the lowest-indexed
/// malformed chunk wins error selection regardless of the thread count.
/// `version` is the stream's format version as returned by
/// [`wcc_graph::io::read_op_chunk_frames`]; version-1 payloads decode to
/// all-insert ops.
///
/// # Errors
///
/// Returns the first (by chunk index) [`IoError`] produced by
/// [`decode_op_chunk`].
pub fn decode_op_chunks(
    version: u32,
    frames: &[Vec<u8>],
    exec: &Executor,
) -> Result<Vec<Vec<EdgeOp>>, IoError> {
    exec.map_items(frames, |i, frame| decode_op_chunk(version, i, frame))
        .into_iter()
        .collect()
}

/// Reads a whole turnstile chunk stream (format version 1 or 2) with
/// parallel per-chunk decode: sequential framing, then [`decode_op_chunks`]
/// through `exec`.
///
/// # Errors
///
/// See [`wcc_graph::io::read_op_chunk_frames`] and [`decode_op_chunks`].
pub fn read_op_chunks_parallel<R: std::io::Read>(
    reader: R,
    exec: &Executor,
) -> Result<Vec<Vec<EdgeOp>>, IoError> {
    let (version, frames) = read_op_chunk_frames(reader)?;
    decode_op_chunks(version, &frames, exec)
}

/// File-path convenience wrapper around [`read_op_chunks_parallel`].
///
/// # Errors
///
/// See [`read_op_chunks_parallel`].
pub fn read_op_chunks_file_parallel(
    path: &std::path::Path,
    exec: &Executor,
) -> Result<Vec<Vec<EdgeOp>>, IoError> {
    read_op_chunks_parallel(
        std::io::BufReader::new(std::fs::File::open(path).map_err(IoError::Io)?),
        exec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcc_graph::io::write_edge_chunks;

    fn sample_chunks() -> Vec<Vec<(u64, u64)>> {
        (0..20u64)
            .map(|c| (0..(c % 5) * 30).map(|i| (c * 1000 + i, i)).collect())
            .collect()
    }

    #[test]
    fn parallel_decode_matches_sequential_for_every_thread_count() {
        let chunks = sample_chunks();
        let mut buf = Vec::new();
        write_edge_chunks(&chunks, &mut buf).unwrap();
        let sequential = wcc_graph::io::read_edge_chunks(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(sequential, chunks);
        for threads in [1usize, 2, 8] {
            let exec = Executor::threaded(threads);
            let parallel = read_edge_chunks_parallel(std::io::Cursor::new(&buf), &exec).unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn decode_error_selection_is_deterministic_across_thread_counts() {
        // Frames 3 and 7 are malformed; the error must always name chunk 3.
        let mut frames: Vec<Vec<u8>> = (0..10u64)
            .map(|c| {
                (0..4u64)
                    .flat_map(|i| {
                        let mut b = c.to_le_bytes().to_vec();
                        b.extend_from_slice(&i.to_le_bytes());
                        b
                    })
                    .collect()
            })
            .collect();
        frames[3].pop();
        frames[7].pop();
        for threads in [1usize, 2, 8] {
            let exec = Executor::threaded(threads);
            let err = decode_edge_chunks(&frames, &exec).unwrap_err();
            assert!(
                matches!(err, IoError::Corrupt { chunk: 3, .. }),
                "threads={threads}: got {err}"
            );
        }
    }

    #[test]
    fn empty_frame_list_decodes_to_nothing() {
        let exec = Executor::threaded(4);
        assert!(decode_edge_chunks(&[], &exec).unwrap().is_empty());
    }

    #[test]
    fn parallel_op_decode_matches_sequential_for_both_versions() {
        use wcc_graph::io::write_op_chunks;
        // v2 stream with mixed ops.
        let ops: Vec<Vec<EdgeOp>> = (0..12u64)
            .map(|c| {
                (0..(c % 4) * 10)
                    .map(|i| {
                        if i % 3 == 0 {
                            EdgeOp::delete(c, i)
                        } else {
                            EdgeOp::insert(c * 100 + i, i)
                        }
                    })
                    .collect()
            })
            .collect();
        let mut v2 = Vec::new();
        write_op_chunks(&ops, &mut v2).unwrap();
        // v1 stream decoded through the op reader.
        let chunks = sample_chunks();
        let mut v1 = Vec::new();
        write_edge_chunks(&chunks, &mut v1).unwrap();
        for threads in [1usize, 2, 8] {
            let exec = Executor::threaded(threads);
            let got = read_op_chunks_parallel(std::io::Cursor::new(&v2), &exec).unwrap();
            assert_eq!(got, ops, "threads={threads}");
            let got = read_op_chunks_parallel(std::io::Cursor::new(&v1), &exec).unwrap();
            let expect: Vec<Vec<EdgeOp>> = chunks
                .iter()
                .map(|c| c.iter().map(|&(u, v)| EdgeOp::insert(u, v)).collect())
                .collect();
            assert_eq!(got, expect, "threads={threads} (v1 stream)");
        }
    }

    #[test]
    fn op_decode_error_selection_is_deterministic_across_thread_counts() {
        use wcc_graph::io::{write_op_chunks, CHUNK_BYTES_PER_OP, CHUNK_FORMAT_VERSION_V2};
        // Build valid v2 frames, then corrupt the op tags of frames 4 and 9.
        let ops: Vec<Vec<EdgeOp>> = (0..12u64)
            .map(|c| (0..5).map(|i| EdgeOp::insert(c, i)).collect())
            .collect();
        let mut buf = Vec::new();
        write_op_chunks(&ops, &mut buf).unwrap();
        let (version, mut frames) =
            wcc_graph::io::read_op_chunk_frames(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(version, CHUNK_FORMAT_VERSION_V2);
        frames[4][2 * CHUNK_BYTES_PER_OP] = 0xFF;
        frames[9][0] = 0xFF;
        for threads in [1usize, 2, 8] {
            let exec = Executor::threaded(threads);
            let err = decode_op_chunks(version, &frames, &exec).unwrap_err();
            assert!(
                matches!(err, IoError::Corrupt { chunk: 4, .. }),
                "threads={threads}: got {err}"
            );
        }
    }
}
