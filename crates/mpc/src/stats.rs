//! Round/memory accounting: the quantities the paper's theorems bound.
//!
//! Accounting is strictly single-threaded: parallel workers never touch an
//! [`MpcContext`]. Instead each worker accumulates into its own
//! [`WorkerStats`], and the calling thread merges the per-worker accumulators
//! *in worker order* via [`MpcContext::absorb_workers`] — so the recorded
//! statistics (and any strict-mode memory error) are bit-identical no matter
//! which backend ran the work or how many threads it used.

use crate::config::{MpcConfig, MpcError};
use crate::executor::Executor;
use crate::radix::ShuffleScratch;

use serde::{Deserialize, Serialize};

/// Resource usage of one named phase of an algorithm (e.g. "regularize",
/// "randomize", "grow-components").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase name.
    pub name: String,
    /// MPC rounds charged during the phase.
    pub rounds: u64,
    /// Words of cross-machine communication charged during the phase.
    pub communication_words: u64,
    /// Bytes the host representation actually moves for the charged
    /// communication. Equal to `communication_words × 8` when every tuple is
    /// stored at full word width; smaller when a stage negotiated the
    /// compact-`u32` representation (see [`crate::compact`] and DESIGN.md
    /// §8). Defaults to `0` when deserialising records written before the
    /// field existed.
    #[serde(default)]
    pub shuffled_bytes: u64,
    /// Wall-clock time spent inside the phase, in milliseconds (the
    /// simulator's practical cost, *not* a model quantity). **Excluded from
    /// equality**: `PhaseStats` / `RoundStats` comparisons cover only the
    /// model-level fields, so the cross-backend determinism contract
    /// ("bit-identical stats for every thread count") is unaffected by
    /// timing jitter.
    pub wall_time_ms: f64,
}

impl PartialEq for PhaseStats {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.rounds == other.rounds
            && self.communication_words == other.communication_words
            && self.shuffled_bytes == other.shuffled_bytes
    }
}

// Equality is total over the compared (non-timing) fields.
impl Eq for PhaseStats {}

/// Aggregate resource usage of an algorithm run on the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RoundStats {
    total_rounds: u64,
    total_communication_words: u64,
    /// See [`PhaseStats::shuffled_bytes`]; defaults to `0` for records
    /// written before byte accounting existed.
    #[serde(default)]
    total_shuffled_bytes: u64,
    max_machine_load_words: usize,
    memory_violations: u64,
    phases: Vec<PhaseStats>,
}

impl RoundStats {
    /// Total MPC rounds charged.
    pub fn total_rounds(&self) -> u64 {
        self.total_rounds
    }

    /// Total words of cross-machine communication charged.
    pub fn total_communication_words(&self) -> u64 {
        self.total_communication_words
    }

    /// Total bytes the host representation moved for the charged
    /// communication (see [`PhaseStats::shuffled_bytes`]).
    pub fn total_shuffled_bytes(&self) -> u64 {
        self.total_shuffled_bytes
    }

    /// Largest number of words any single machine was asked to hold.
    pub fn max_machine_load_words(&self) -> usize {
        self.max_machine_load_words
    }

    /// Number of times a machine's budget was exceeded (only non-zero in
    /// permissive mode; strict mode errors out instead).
    pub fn memory_violations(&self) -> u64 {
        self.memory_violations
    }

    /// Per-phase breakdown, in execution order.
    pub fn phases(&self) -> &[PhaseStats] {
        &self.phases
    }

    /// Rounds charged to the phase with the given name (summed over repeats).
    pub fn rounds_in_phase(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.rounds)
            .sum()
    }

    /// Bytes shuffled in the phase with the given name (summed over
    /// repeats).
    pub fn shuffled_bytes_in_phase(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.shuffled_bytes)
            .sum()
    }

    /// Wall-clock milliseconds spent in the phase with the given name
    /// (summed over repeats). A simulator-cost observable, not a model
    /// quantity — see [`PhaseStats::wall_time_ms`].
    pub fn wall_time_in_phase_ms(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.wall_time_ms)
            .sum()
    }

    /// Total wall-clock milliseconds across all recorded phases.
    pub fn total_phase_wall_time_ms(&self) -> f64 {
        self.phases.iter().map(|p| p.wall_time_ms).sum()
    }

    /// Folds another run's statistics into this one: rounds, words and
    /// violations add, machine loads max, and `other`'s phases are appended
    /// in order after the existing ones. This is how long-lived callers (the
    /// streaming ingestion engine, experiment harnesses aggregating several
    /// runs) keep one cumulative record across contexts — e.g. when a
    /// growing input forces a fresh, larger [`MpcContext`], the old
    /// context's `into_stats()` is absorbed into the running total.
    pub fn absorb(&mut self, other: RoundStats) {
        self.total_rounds += other.total_rounds;
        self.total_communication_words += other.total_communication_words;
        self.total_shuffled_bytes += other.total_shuffled_bytes;
        self.max_machine_load_words = self
            .max_machine_load_words
            .max(other.max_machine_load_words);
        self.memory_violations += other.memory_violations;
        self.phases.extend(other.phases);
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} rounds, {} words shuffled, max machine load {} words, {} memory violations",
            self.total_rounds,
            self.total_communication_words,
            self.max_machine_load_words,
            self.memory_violations
        )
    }
}

/// The accounting context algorithms charge their resource usage against.
///
/// Costs follow the paper's implementation paragraphs:
///
/// * a shuffle / communication superstep is **1 round**;
/// * a Goodrich sort or search over `N` items is **`⌈log_s N⌉` rounds**
///   ([`MpcConfig::sort_rounds`]);
/// * local computation within a round is free (the MPC model allows unbounded
///   local computation).
#[derive(Debug, Clone)]
pub struct MpcContext {
    config: MpcConfig,
    executor: Executor,
    stats: RoundStats,
    current_phase: Option<PhaseStats>,
    /// Start instant of the open phase (drives [`PhaseStats::wall_time_ms`]).
    phase_started: Option<std::time::Instant>,
    /// Reusable shuffle/reduce scratch (histograms, cursor tables, cached
    /// keys), handed to `Cluster` operations so successive rounds on this
    /// context reallocate nothing. Cold after `clone()`.
    scratch: ShuffleScratch,
}

impl MpcContext {
    /// Creates a fresh context for the given cluster configuration. The
    /// context's execution backend is resolved from [`MpcConfig::threads`]
    /// here and then pinned for the context's lifetime. (A [`Cluster`]
    /// constructed later from the same config resolves independently at
    /// construction time — with `threads == 0` both consult `WCC_THREADS`,
    /// so keep the environment stable across a run.)
    ///
    /// [`Cluster`]: crate::Cluster
    pub fn new(config: MpcConfig) -> Self {
        MpcContext {
            config,
            executor: config.executor(),
            stats: RoundStats::default(),
            current_phase: None,
            phase_started: None,
            scratch: ShuffleScratch::default(),
        }
    }

    /// Takes the reusable scratch out of the context for the duration of one
    /// cluster operation (so the operation can borrow both the scratch and
    /// the context's accounting API); pair with
    /// [`MpcContext::restore_scratch`].
    pub(crate) fn take_scratch(&mut self) -> ShuffleScratch {
        std::mem::take(&mut self.scratch)
    }

    /// Returns the scratch taken by [`MpcContext::take_scratch`], preserving
    /// its grown buffers for the next operation.
    pub(crate) fn restore_scratch(&mut self, scratch: ShuffleScratch) {
        self.scratch = scratch;
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// The execution backend algorithms should fan per-machine / per-chunk
    /// work out through.
    pub fn executor(&self) -> Executor {
        self.executor.clone()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RoundStats {
        &self.stats
    }

    /// Consumes the context and returns the accumulated statistics, closing
    /// any open phase.
    pub fn into_stats(mut self) -> RoundStats {
        self.end_phase();
        self.stats
    }

    /// Starts a named phase; any previously open phase is closed first. The
    /// phase records the paper's model quantities (rounds, words) *and* the
    /// wall-clock time until the matching [`MpcContext::end_phase`].
    pub fn begin_phase(&mut self, name: &str) {
        self.end_phase();
        self.current_phase = Some(PhaseStats {
            name: name.to_string(),
            rounds: 0,
            communication_words: 0,
            shuffled_bytes: 0,
            wall_time_ms: 0.0,
        });
        self.phase_started = Some(std::time::Instant::now());
    }

    /// Closes the current phase (no-op if none is open).
    pub fn end_phase(&mut self) {
        if let Some(mut phase) = self.current_phase.take() {
            if let Some(started) = self.phase_started.take() {
                phase.wall_time_ms = started.elapsed().as_secs_f64() * 1e3;
            }
            self.stats.phases.push(phase);
        }
    }

    /// Charges `rounds` MPC rounds and `communication_words` words of
    /// cross-machine traffic, with the host bytes defaulted to full word
    /// width (`words × 8`). Stages that move a narrower representation use
    /// [`MpcContext::charge_with_bytes`] to record what actually crossed.
    pub fn charge(&mut self, rounds: u64, communication_words: u64) {
        self.charge_with_bytes(
            rounds,
            communication_words,
            communication_words * crate::compact::WORD_BYTES as u64,
        );
    }

    /// Charges `rounds` rounds, `communication_words` model words, and
    /// `shuffled_bytes` host bytes. The model quantities (rounds, words) are
    /// what the paper's theorems bound; the bytes record what the chosen
    /// tuple representation actually moves, so a compact-`u32` stage shows
    /// half the bytes of a wide one at identical model cost.
    pub fn charge_with_bytes(
        &mut self,
        rounds: u64,
        communication_words: u64,
        shuffled_bytes: u64,
    ) {
        self.stats.total_rounds += rounds;
        self.stats.total_communication_words += communication_words;
        self.stats.total_shuffled_bytes += shuffled_bytes;
        if let Some(phase) = self.current_phase.as_mut() {
            phase.rounds += rounds;
            phase.communication_words += communication_words;
            phase.shuffled_bytes += shuffled_bytes;
        }
    }

    /// Charges a single communication round moving `words` words in total.
    pub fn charge_shuffle(&mut self, words: usize) {
        self.charge(1, words as u64);
    }

    /// Charges a single communication round moving `words` model words whose
    /// host representation occupies `bytes` bytes.
    pub fn charge_shuffle_with_bytes(&mut self, words: usize, bytes: usize) {
        self.charge_with_bytes(1, words as u64, bytes as u64);
    }

    /// Charges a Goodrich parallel sort over `n_items` items:
    /// `⌈log_s n⌉` rounds, each moving (at most) all items once.
    pub fn charge_sort(&mut self, n_items: usize) {
        let rounds = self.config.sort_rounds(n_items);
        self.charge(rounds, rounds * n_items as u64);
    }

    /// Charges a Goodrich parallel sort over `n_items` items of
    /// `bytes_per_item` host bytes each: same model cost as
    /// [`MpcContext::charge_sort`], with the byte column reflecting the
    /// negotiated tuple width (a `u64`-packed edge sort moves half the bytes
    /// of a wide `(usize, usize)` one).
    pub fn charge_sort_with_bytes(&mut self, n_items: usize, bytes_per_item: usize) {
        let rounds = self.config.sort_rounds(n_items);
        self.charge_with_bytes(
            rounds,
            rounds * n_items as u64,
            rounds * (n_items * bytes_per_item) as u64,
        );
    }

    /// Charges a Goodrich parallel search annotating `n_queries` queries
    /// against a set of `n_items` key–value pairs: `⌈log_s(n_items +
    /// n_queries)⌉` rounds.
    pub fn charge_search(&mut self, n_items: usize, n_queries: usize) {
        let total = n_items + n_queries;
        let rounds = self.config.sort_rounds(total);
        self.charge(rounds, rounds * total as u64);
    }

    /// Records that some machine holds `words` words, enforcing the memory
    /// budget.
    ///
    /// # Errors
    ///
    /// In strict mode returns [`MpcError::MemoryExceeded`] when `words`
    /// exceeds the per-machine budget; in permissive mode the violation is
    /// only counted.
    pub fn record_machine_load(&mut self, machine: usize, words: usize) -> Result<(), MpcError> {
        self.stats.max_machine_load_words = self.stats.max_machine_load_words.max(words);
        if words > self.config.memory_per_machine {
            self.stats.memory_violations += 1;
            if self.config.strict_memory {
                return Err(MpcError::MemoryExceeded {
                    machine,
                    required: words,
                    budget: self.config.memory_per_machine,
                });
            }
        }
        Ok(())
    }

    /// Merges per-worker accumulators, **in the order given**, into the
    /// global statistics. Call this once after a parallel fan-out, passing
    /// the workers' [`WorkerStats`] in worker (= index-range) order; the
    /// result is then independent of the backend and thread count.
    ///
    /// # Errors
    ///
    /// In strict mode, returns [`MpcError::MemoryExceeded`] for the
    /// overflowing machine with the *lowest machine index* across all
    /// workers (a deterministic choice; the sequential backend reports the
    /// same machine). All loads and violations are recorded before the error
    /// is raised.
    pub fn absorb_workers(
        &mut self,
        workers: impl IntoIterator<Item = WorkerStats>,
    ) -> Result<(), MpcError> {
        let mut merged = WorkerStats::default();
        for w in workers {
            merged.merge(w);
        }
        self.stats.max_machine_load_words = self
            .stats
            .max_machine_load_words
            .max(merged.max_machine_load_words);
        self.stats.memory_violations += merged.memory_violations;
        if self.config.strict_memory {
            if let Some((machine, required)) = merged.first_overflow {
                return Err(MpcError::MemoryExceeded {
                    machine,
                    required,
                    budget: self.config.memory_per_machine,
                });
            }
        }
        Ok(())
    }

    /// Records the load of a *balanced* distribution of `total_words` words
    /// across all machines (the common case for the algorithms in this
    /// workspace, which only ever hold evenly hashed tuples).
    ///
    /// # Errors
    ///
    /// Same as [`MpcContext::record_machine_load`].
    pub fn record_balanced_load(&mut self, total_words: usize) -> Result<(), MpcError> {
        let per_machine = total_words.div_ceil(self.config.num_machines.max(1));
        self.record_machine_load(0, per_machine)
    }
}

/// A per-worker accumulator for memory accounting inside a parallel
/// fan-out.
///
/// Workers cannot share the `&mut MpcContext`, so each one records the
/// machine loads it observed into its own `WorkerStats`; the calling thread
/// merges them in worker order with [`MpcContext::absorb_workers`]. Merging
/// is associative (max of maxima, sum of violation counts, min-machine-index
/// overflow), so any contiguous partition of the work produces identical
/// merged statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    max_machine_load_words: usize,
    memory_violations: u64,
    /// The overflow with the lowest machine index seen so far, as
    /// `(machine, required_words)`.
    first_overflow: Option<(usize, usize)>,
}

impl WorkerStats {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        WorkerStats::default()
    }

    /// Records that `machine` holds `words` words against `budget`. Unlike
    /// [`MpcContext::record_machine_load`] this never errors — violations
    /// are deferred to the deterministic merge in
    /// [`MpcContext::absorb_workers`].
    pub fn record_machine_load(&mut self, machine: usize, words: usize, budget: usize) {
        self.max_machine_load_words = self.max_machine_load_words.max(words);
        if words > budget {
            self.memory_violations += 1;
            let better = match self.first_overflow {
                None => true,
                Some((m, _)) => machine < m,
            };
            if better {
                self.first_overflow = Some((machine, words));
            }
        }
    }

    /// Records the load of every machine described by a CSR-style offset
    /// table (`offsets.len() == machines + 1`, span `i` holding
    /// `offsets[i + 1] - offsets[i]` tuples of `words_per_tuple` words
    /// each), in machine order — the accounting pass of the flat-arena
    /// [`Cluster`](crate::Cluster) layout, equivalent to calling
    /// [`WorkerStats::record_machine_load`] once per machine.
    pub fn record_span_loads(&mut self, offsets: &[usize], words_per_tuple: usize, budget: usize) {
        for (i, w) in offsets.windows(2).enumerate() {
            self.record_machine_load(i, (w[1] - w[0]) * words_per_tuple, budget);
        }
    }

    /// Largest load recorded so far, in words.
    pub fn max_machine_load_words(&self) -> usize {
        self.max_machine_load_words
    }

    /// Number of budget violations recorded so far.
    pub fn memory_violations(&self) -> u64 {
        self.memory_violations
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: WorkerStats) {
        self.max_machine_load_words = self
            .max_machine_load_words
            .max(other.max_machine_load_words);
        self.memory_violations += other.memory_violations;
        self.first_overflow = match (self.first_overflow, other.first_overflow) {
            (None, b) => b,
            (a, None) => a,
            (Some((ma, ra)), Some((mb, rb))) => {
                if mb < ma {
                    Some((mb, rb))
                } else {
                    Some((ma, ra))
                }
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(s: usize) -> MpcContext {
        MpcContext::new(MpcConfig::with_memory(1 << 16, s))
    }

    #[test]
    fn charges_accumulate_globally_and_per_phase() {
        let mut c = ctx(256);
        c.begin_phase("a");
        c.charge_shuffle(100);
        c.charge_shuffle(50);
        c.begin_phase("b");
        c.charge(3, 10);
        c.end_phase();
        let stats = c.stats();
        assert_eq!(stats.total_rounds(), 5);
        assert_eq!(stats.total_communication_words(), 160);
        assert_eq!(stats.rounds_in_phase("a"), 2);
        assert_eq!(stats.rounds_in_phase("b"), 3);
        assert_eq!(stats.phases().len(), 2);
    }

    #[test]
    fn sort_cost_matches_config() {
        let mut c = ctx(1 << 8);
        c.charge_sort(1 << 16);
        assert_eq!(c.stats().total_rounds(), 2);
        let mut c2 = ctx(16);
        c2.charge_sort(1 << 16);
        assert_eq!(c2.stats().total_rounds(), 4);
    }

    #[test]
    fn strict_memory_errors_permissive_counts() {
        let mut strict = ctx(100);
        assert!(strict.record_machine_load(3, 101).is_err());
        let mut loose = MpcContext::new(MpcConfig::with_memory(1 << 16, 100).permissive());
        assert!(loose.record_machine_load(3, 101).is_ok());
        assert!(loose.record_machine_load(3, 99).is_ok());
        assert_eq!(loose.stats().memory_violations(), 1);
        assert_eq!(loose.stats().max_machine_load_words(), 101);
    }

    #[test]
    fn into_stats_closes_open_phase() {
        let mut c = ctx(64);
        c.begin_phase("open");
        c.charge(2, 0);
        let stats = c.into_stats();
        assert_eq!(stats.phases().len(), 1);
        assert_eq!(stats.rounds_in_phase("open"), 2);
    }

    #[test]
    fn balanced_load_divides_by_machines() {
        let config = MpcConfig {
            memory_per_machine: 10,
            num_machines: 10,
            delta: 0.5,
            strict_memory: true,
            threads: 1,
        };
        let mut c = MpcContext::new(config);
        assert!(c.record_balanced_load(100).is_ok());
        assert!(c.record_balanced_load(101).is_err());
    }

    #[test]
    fn phase_wall_time_is_recorded_but_excluded_from_equality() {
        let mut a = ctx(64);
        a.begin_phase("walks");
        std::thread::sleep(std::time::Duration::from_millis(2));
        a.charge(1, 10);
        a.end_phase();
        let stats_a = a.into_stats();
        assert!(stats_a.wall_time_in_phase_ms("walks") > 0.0);
        assert!(stats_a.total_phase_wall_time_ms() >= stats_a.wall_time_in_phase_ms("walks"));

        // A second run of the same phase takes a different wall time, but the
        // stats still compare equal: timing is an observable, not part of the
        // determinism contract.
        let mut b = ctx(64);
        b.begin_phase("walks");
        b.charge(1, 10);
        b.end_phase();
        let stats_b = b.into_stats();
        assert_ne!(
            stats_a.phases()[0].wall_time_ms,
            stats_b.phases()[0].wall_time_ms
        );
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn absorb_concatenates_runs() {
        let mut a = ctx(64);
        a.begin_phase("first");
        a.charge(2, 100);
        a.record_machine_load(0, 30).unwrap();
        let mut total = a.into_stats();

        let mut b = ctx(64);
        b.begin_phase("second");
        b.charge(3, 50);
        b.record_machine_load(1, 45).unwrap();
        total.absorb(b.into_stats());

        assert_eq!(total.total_rounds(), 5);
        assert_eq!(total.total_communication_words(), 150);
        assert_eq!(total.max_machine_load_words(), 45);
        let names: Vec<&str> = total.phases().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second"]);
        // Absorbing an empty record is a no-op.
        let before = total.clone();
        total.absorb(RoundStats::default());
        assert_eq!(total, before);
    }

    #[test]
    fn byte_accounting_defaults_to_word_width_and_narrows_on_request() {
        let mut c = ctx(1 << 8);
        c.begin_phase("wide");
        c.charge_shuffle(100);
        c.begin_phase("narrow");
        c.charge_shuffle_with_bytes(100, 400);
        c.end_phase();
        let stats = c.stats().clone();
        assert_eq!(stats.shuffled_bytes_in_phase("wide"), 800);
        assert_eq!(stats.shuffled_bytes_in_phase("narrow"), 400);
        assert_eq!(stats.total_shuffled_bytes(), 1200);

        // Sorts: identical model cost, honest byte column. A 16-byte tuple
        // charges twice the bytes of its 8-byte compact image, and the
        // plain `charge_sort` default is the one-word-per-item width.
        let mut wide = ctx(1 << 8);
        wide.charge_sort_with_bytes(1 << 16, 16);
        let mut narrow = ctx(1 << 8);
        narrow.charge_sort_with_bytes(1 << 16, 8);
        let mut plain = ctx(1 << 8);
        plain.charge_sort(1 << 16);
        assert_eq!(plain.stats(), narrow.stats());
        assert_eq!(wide.stats().total_rounds(), narrow.stats().total_rounds());
        assert_eq!(
            wide.stats().total_communication_words(),
            narrow.stats().total_communication_words()
        );
        assert_eq!(
            wide.stats().total_shuffled_bytes(),
            2 * narrow.stats().total_shuffled_bytes()
        );

        // Byte divergence is visible to equality: same words, different
        // representation widths must not compare equal.
        assert_ne!(stats.phases()[0], stats.phases()[1]);

        // Absorbing folds the byte column too.
        let mut total = stats.clone();
        total.absorb(stats);
        assert_eq!(total.total_shuffled_bytes(), 2400);
    }

    #[test]
    fn summary_mentions_rounds() {
        let mut c = ctx(64);
        c.charge(7, 3);
        assert!(c.stats().summary().contains("7 rounds"));
    }

    #[test]
    fn worker_stats_merge_is_order_insensitive_for_aggregates() {
        let budget = 100;
        let mut a = WorkerStats::new();
        a.record_machine_load(0, 50, budget);
        a.record_machine_load(3, 120, budget);
        let mut b = WorkerStats::new();
        b.record_machine_load(1, 130, budget);
        b.record_machine_load(2, 80, budget);

        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        assert_eq!(ab, ba);
        assert_eq!(ab.max_machine_load_words(), 130);
        assert_eq!(ab.memory_violations(), 2);
    }

    #[test]
    fn absorb_workers_reports_lowest_overflowing_machine() {
        let mut strict = ctx(100);
        let mut w0 = WorkerStats::new();
        w0.record_machine_load(7, 150, 100);
        let mut w1 = WorkerStats::new();
        w1.record_machine_load(2, 140, 100);
        let err = strict.absorb_workers([w0.clone(), w1.clone()]).unwrap_err();
        assert!(matches!(err, MpcError::MemoryExceeded { machine: 2, .. }));
        // Loads and violations were still recorded before erroring.
        assert_eq!(strict.stats().max_machine_load_words(), 150);
        assert_eq!(strict.stats().memory_violations(), 2);

        let mut loose = MpcContext::new(MpcConfig::with_memory(1 << 16, 100).permissive());
        assert!(loose.absorb_workers([w0, w1]).is_ok());
        assert_eq!(loose.stats().memory_violations(), 2);
    }

    #[test]
    fn context_exposes_the_configured_executor() {
        let c = MpcContext::new(MpcConfig::with_memory(1 << 10, 64).with_threads(3));
        assert_eq!(c.executor().threads(), 3);
    }
}
