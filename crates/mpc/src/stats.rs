//! Round/memory accounting: the quantities the paper's theorems bound.

use crate::config::{MpcConfig, MpcError};

use serde::{Deserialize, Serialize};

/// Resource usage of one named phase of an algorithm (e.g. "regularize",
/// "random-walks", "grow-components").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase name.
    pub name: String,
    /// MPC rounds charged during the phase.
    pub rounds: u64,
    /// Words of cross-machine communication charged during the phase.
    pub communication_words: u64,
}

/// Aggregate resource usage of an algorithm run on the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RoundStats {
    total_rounds: u64,
    total_communication_words: u64,
    max_machine_load_words: usize,
    memory_violations: u64,
    phases: Vec<PhaseStats>,
}

impl RoundStats {
    /// Total MPC rounds charged.
    pub fn total_rounds(&self) -> u64 {
        self.total_rounds
    }

    /// Total words of cross-machine communication charged.
    pub fn total_communication_words(&self) -> u64 {
        self.total_communication_words
    }

    /// Largest number of words any single machine was asked to hold.
    pub fn max_machine_load_words(&self) -> usize {
        self.max_machine_load_words
    }

    /// Number of times a machine's budget was exceeded (only non-zero in
    /// permissive mode; strict mode errors out instead).
    pub fn memory_violations(&self) -> u64 {
        self.memory_violations
    }

    /// Per-phase breakdown, in execution order.
    pub fn phases(&self) -> &[PhaseStats] {
        &self.phases
    }

    /// Rounds charged to the phase with the given name (summed over repeats).
    pub fn rounds_in_phase(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.rounds)
            .sum()
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} rounds, {} words shuffled, max machine load {} words, {} memory violations",
            self.total_rounds,
            self.total_communication_words,
            self.max_machine_load_words,
            self.memory_violations
        )
    }
}

/// The accounting context algorithms charge their resource usage against.
///
/// Costs follow the paper's implementation paragraphs:
///
/// * a shuffle / communication superstep is **1 round**;
/// * a Goodrich sort or search over `N` items is **`⌈log_s N⌉` rounds**
///   ([`MpcConfig::sort_rounds`]);
/// * local computation within a round is free (the MPC model allows unbounded
///   local computation).
#[derive(Debug, Clone)]
pub struct MpcContext {
    config: MpcConfig,
    stats: RoundStats,
    current_phase: Option<PhaseStats>,
}

impl MpcContext {
    /// Creates a fresh context for the given cluster configuration.
    pub fn new(config: MpcConfig) -> Self {
        MpcContext {
            config,
            stats: RoundStats::default(),
            current_phase: None,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RoundStats {
        &self.stats
    }

    /// Consumes the context and returns the accumulated statistics, closing
    /// any open phase.
    pub fn into_stats(mut self) -> RoundStats {
        self.end_phase();
        self.stats
    }

    /// Starts a named phase; any previously open phase is closed first.
    pub fn begin_phase(&mut self, name: &str) {
        self.end_phase();
        self.current_phase = Some(PhaseStats {
            name: name.to_string(),
            rounds: 0,
            communication_words: 0,
        });
    }

    /// Closes the current phase (no-op if none is open).
    pub fn end_phase(&mut self) {
        if let Some(phase) = self.current_phase.take() {
            self.stats.phases.push(phase);
        }
    }

    /// Charges `rounds` MPC rounds and `communication_words` words of
    /// cross-machine traffic.
    pub fn charge(&mut self, rounds: u64, communication_words: u64) {
        self.stats.total_rounds += rounds;
        self.stats.total_communication_words += communication_words;
        if let Some(phase) = self.current_phase.as_mut() {
            phase.rounds += rounds;
            phase.communication_words += communication_words;
        }
    }

    /// Charges a single communication round moving `words` words in total.
    pub fn charge_shuffle(&mut self, words: usize) {
        self.charge(1, words as u64);
    }

    /// Charges a Goodrich parallel sort over `n_items` items:
    /// `⌈log_s n⌉` rounds, each moving (at most) all items once.
    pub fn charge_sort(&mut self, n_items: usize) {
        let rounds = self.config.sort_rounds(n_items);
        self.charge(rounds, rounds * n_items as u64);
    }

    /// Charges a Goodrich parallel search annotating `n_queries` queries
    /// against a set of `n_items` key–value pairs: `⌈log_s(n_items +
    /// n_queries)⌉` rounds.
    pub fn charge_search(&mut self, n_items: usize, n_queries: usize) {
        let total = n_items + n_queries;
        let rounds = self.config.sort_rounds(total);
        self.charge(rounds, rounds * total as u64);
    }

    /// Records that some machine holds `words` words, enforcing the memory
    /// budget.
    ///
    /// # Errors
    ///
    /// In strict mode returns [`MpcError::MemoryExceeded`] when `words`
    /// exceeds the per-machine budget; in permissive mode the violation is
    /// only counted.
    pub fn record_machine_load(&mut self, machine: usize, words: usize) -> Result<(), MpcError> {
        self.stats.max_machine_load_words = self.stats.max_machine_load_words.max(words);
        if words > self.config.memory_per_machine {
            self.stats.memory_violations += 1;
            if self.config.strict_memory {
                return Err(MpcError::MemoryExceeded {
                    machine,
                    required: words,
                    budget: self.config.memory_per_machine,
                });
            }
        }
        Ok(())
    }

    /// Records the load of a *balanced* distribution of `total_words` words
    /// across all machines (the common case for the algorithms in this
    /// workspace, which only ever hold evenly hashed tuples).
    ///
    /// # Errors
    ///
    /// Same as [`MpcContext::record_machine_load`].
    pub fn record_balanced_load(&mut self, total_words: usize) -> Result<(), MpcError> {
        let per_machine = total_words.div_ceil(self.config.num_machines.max(1));
        self.record_machine_load(0, per_machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(s: usize) -> MpcContext {
        MpcContext::new(MpcConfig::with_memory(1 << 16, s))
    }

    #[test]
    fn charges_accumulate_globally_and_per_phase() {
        let mut c = ctx(256);
        c.begin_phase("a");
        c.charge_shuffle(100);
        c.charge_shuffle(50);
        c.begin_phase("b");
        c.charge(3, 10);
        c.end_phase();
        let stats = c.stats();
        assert_eq!(stats.total_rounds(), 5);
        assert_eq!(stats.total_communication_words(), 160);
        assert_eq!(stats.rounds_in_phase("a"), 2);
        assert_eq!(stats.rounds_in_phase("b"), 3);
        assert_eq!(stats.phases().len(), 2);
    }

    #[test]
    fn sort_cost_matches_config() {
        let mut c = ctx(1 << 8);
        c.charge_sort(1 << 16);
        assert_eq!(c.stats().total_rounds(), 2);
        let mut c2 = ctx(16);
        c2.charge_sort(1 << 16);
        assert_eq!(c2.stats().total_rounds(), 4);
    }

    #[test]
    fn strict_memory_errors_permissive_counts() {
        let mut strict = ctx(100);
        assert!(strict.record_machine_load(3, 101).is_err());
        let mut loose = MpcContext::new(MpcConfig::with_memory(1 << 16, 100).permissive());
        assert!(loose.record_machine_load(3, 101).is_ok());
        assert!(loose.record_machine_load(3, 99).is_ok());
        assert_eq!(loose.stats().memory_violations(), 1);
        assert_eq!(loose.stats().max_machine_load_words(), 101);
    }

    #[test]
    fn into_stats_closes_open_phase() {
        let mut c = ctx(64);
        c.begin_phase("open");
        c.charge(2, 0);
        let stats = c.into_stats();
        assert_eq!(stats.phases().len(), 1);
        assert_eq!(stats.rounds_in_phase("open"), 2);
    }

    #[test]
    fn balanced_load_divides_by_machines() {
        let config = MpcConfig {
            memory_per_machine: 10,
            num_machines: 10,
            delta: 0.5,
            strict_memory: true,
        };
        let mut c = MpcContext::new(config);
        assert!(c.record_balanced_load(100).is_ok());
        assert!(c.record_balanced_load(101).is_err());
    }

    #[test]
    fn summary_mentions_rounds() {
        let mut c = ctx(64);
        c.charge(7, 3);
        assert!(c.stats().summary().contains("7 rounds"));
    }
}
