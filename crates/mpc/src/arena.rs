//! Move and scatter primitives for the flat tuple arena.
//!
//! This module holds the **only** unsafe code in the crate (the crate root is
//! `#![deny(unsafe_code)]` with a targeted allow here). Everything in it
//! implements one pattern: a set of workers, each owning a *disjoint* slice
//! of the index space, moves (or clones) elements from a source buffer into
//! predetermined disjoint positions of a preallocated destination buffer.
//! Safe Rust cannot express "many threads write disjoint computed positions
//! of one vector" without either per-worker staging vectors (the
//! clone-into-buckets layout this refactor removes) or interior-mutability
//! wrappers that cost a word per element, so the three entry points below
//! are built on raw pointers with the disjointness argument spelled out at
//! every unsafe block.
//!
//! Invariants shared by all entry points:
//!
//! * source buffers are consumed by `ptr::read` exactly once per element —
//!   the source `Vec`'s length is set to zero *before* any worker runs, so a
//!   panic can only leak elements (safe), never double-drop them;
//! * destination buffers are `Vec<MaybeUninit<T>>`, fully initialised by the
//!   workers (each position written exactly once) and only then converted to
//!   `Vec<T>`;
//! * worker fan-out goes through [`Executor::run_spans`], which joins every
//!   worker before returning, so no pointer outlives the buffers it points
//!   into.

use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::Range;

use crate::executor::Executor;

/// A raw pointer that may be captured by worker closures. Safety is argued
/// at the use sites: workers only dereference indices from their own
/// disjoint range/position set, and the underlying buffers outlive the
/// fan-out (scoped threads join before the owning function returns).
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer. A method (rather than field access) so that
    /// closures capture the whole `SendPtr` — edition-2021 disjoint capture
    /// would otherwise capture the bare `*mut T` field, which is not `Send`.
    fn get(self) -> *mut T {
        self.0
    }
}

#[allow(unsafe_code)]
// SAFETY: sending/sharing the pointer itself is free; dereferences are
// justified per use site (disjoint index sets, buffers outlive the scope).
unsafe impl<T: Send> Send for SendPtr<T> {}
#[allow(unsafe_code)]
// SAFETY: see the `Send` impl above.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Converts a fully-initialised `Vec<MaybeUninit<T>>` into `Vec<T>`.
///
/// Callers must have written every position exactly once.
#[allow(unsafe_code)]
fn assume_init_vec<T>(v: Vec<MaybeUninit<T>>) -> Vec<T> {
    let mut v = ManuallyDrop::new(v);
    let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
    // SAFETY: `MaybeUninit<T>` has the same layout as `T`, every slot is
    // initialised (caller contract), and the original Vec is forgotten so
    // the allocation has exactly one owner.
    unsafe { Vec::from_raw_parts(ptr.cast::<T>(), len, cap) }
}

/// A fresh uninitialised buffer of length `n`.
fn uninit_vec<T>(n: usize) -> Vec<MaybeUninit<T>> {
    let mut v = Vec::with_capacity(n);
    v.resize_with(n, MaybeUninit::uninit);
    v
}

#[cfg(debug_assertions)]
fn debug_check_permutation(pos: &[usize]) {
    let mut seen = vec![false; pos.len()];
    for &p in pos {
        assert!(p < pos.len(), "position {p} out of range");
        assert!(!seen[p], "position {p} written twice");
        seen[p] = true;
    }
}

#[cfg(not(debug_assertions))]
fn debug_check_permutation(_pos: &[usize]) {}

/// Consumes `src` and returns `out` with `out[pos[i]] = src[i]`, moving every
/// element exactly once. `pos` must be a permutation of `0..src.len()`
/// (checked in debug builds); workers move disjoint index ranges in
/// parallel.
#[allow(unsafe_code)]
pub(crate) fn permute_owned<T: Send>(
    executor: &Executor,
    mut src: Vec<T>,
    pos: &[usize],
) -> Vec<T> {
    let n = src.len();
    assert_eq!(pos.len(), n, "one position per element required");
    debug_check_permutation(pos);
    let mut out = uninit_vec::<T>(n);
    let out_ptr = SendPtr(out.as_mut_ptr());
    let src_ptr = SendPtr(src.as_mut_ptr());
    // SAFETY: zero the length first so elements are owned by the moves below
    // (a panic leaks instead of double-dropping); the buffer itself stays
    // allocated until `src` drops at the end of this function, after every
    // worker has joined.
    unsafe { src.set_len(0) };
    executor.run_spans(&executor.element_spans(n), |_w, range| {
        for i in range {
            // SAFETY: ranges are disjoint, so `src[i]` is read exactly once;
            // `pos` is a permutation, so `out[pos[i]]` is written exactly
            // once; both buffers outlive the joined scope.
            unsafe {
                let t = src_ptr.get().add(i).read();
                out_ptr.get().add(pos[i]).cast::<T>().write(t);
            }
        }
    });
    assume_init_vec(out)
}

/// Consumes `src` element-wise through `f`, in parallel, preserving order:
/// `out[i] = f(src[i])` with every `T` moved (not cloned) into `f`.
#[allow(unsafe_code)]
pub(crate) fn map_owned<T: Send, U: Send, F>(executor: &Executor, mut src: Vec<T>, f: F) -> Vec<U>
where
    F: Fn(T) -> U + Sync,
{
    let n = src.len();
    let mut out = uninit_vec::<U>(n);
    let out_ptr = SendPtr(out.as_mut_ptr());
    let src_ptr = SendPtr(src.as_mut_ptr());
    // SAFETY: as in `permute_owned` — length zeroed before any read.
    unsafe { src.set_len(0) };
    executor.run_spans(&executor.element_spans(n), |_w, range| {
        for i in range {
            // SAFETY: disjoint ranges — index `i` is read and written exactly
            // once, and both buffers outlive the joined scope.
            unsafe {
                let t = src_ptr.get().add(i).read();
                out_ptr.get().add(i).cast::<U>().write(f(t));
            }
        }
    });
    assume_init_vec(out)
}

/// Debug-only validation that `cursors` (a flat worker-major table of
/// stride `num_dests`) are the exclusive prefix sums of the per-range
/// destination histograms of `dests` — the invariant that makes the scatters
/// below write every output slot exactly once.
#[cfg(debug_assertions)]
fn debug_check_scatter_plan(
    dests: &[usize],
    ranges: &[Range<usize>],
    cursors: &[usize],
    num_dests: usize,
) {
    let m = num_dests;
    let mut expected: Vec<Vec<usize>> = Vec::with_capacity(ranges.len());
    let mut totals = vec![0usize; m];
    for range in ranges {
        let mut hist = vec![0usize; m];
        for &d in &dests[range.clone()] {
            assert!(d < m, "destination {d} out of range");
            hist[d] += 1;
        }
        expected.push(totals.clone());
        for d in 0..m {
            totals[d] += hist[d];
        }
    }
    // Shift per-worker starts by the destination base offsets.
    let mut base = vec![0usize; m];
    let mut acc = 0usize;
    for d in 0..m {
        base[d] = acc;
        acc += totals[d];
    }
    assert_eq!(acc, dests.len(), "histograms must cover every element");
    for (w, starts) in expected.iter().enumerate() {
        for d in 0..m {
            assert_eq!(
                cursors[w * m + d],
                base[d] + starts[d],
                "cursor mismatch at worker {w}, destination {d}"
            );
        }
    }
}

#[cfg(not(debug_assertions))]
fn debug_check_scatter_plan(
    _dests: &[usize],
    _ranges: &[Range<usize>],
    _cursors: &[usize],
    _num_dests: usize,
) {
}

/// The scatter half of the counting shuffle, moving elements: worker `w`
/// walks `ranges[w]` in order and writes element `i` to the next free slot
/// of its destination's cursor window. `cursors` is a flat worker-major
/// table of stride `num_dests` (`cursors[w * num_dests + d]` = worker `w`'s
/// exclusive-prefix-sum write cursor for destination `d`); each worker
/// advances **its own row in place**, so the table — typically scratch
/// reused across shuffles — is never cloned. The cursor windows partition
/// `0..src.len()` (checked in debug builds), so every output slot is
/// written exactly once.
#[allow(unsafe_code)]
pub(crate) fn scatter_owned<T: Send>(
    executor: &Executor,
    mut src: Vec<T>,
    dests: &[usize],
    ranges: &[Range<usize>],
    cursors: &mut [usize],
    num_dests: usize,
) -> Vec<T> {
    let n = src.len();
    assert_eq!(dests.len(), n, "one destination per element required");
    assert_eq!(
        ranges.len() * num_dests,
        cursors.len(),
        "one cursor row per range"
    );
    debug_check_scatter_plan(dests, ranges, cursors, num_dests);
    let mut out = uninit_vec::<T>(n);
    let out_ptr = SendPtr(out.as_mut_ptr());
    let src_ptr = SendPtr(src.as_mut_ptr());
    let cursor_ptr = SendPtr(cursors.as_mut_ptr());
    // SAFETY: as in `permute_owned` — length zeroed before any read.
    unsafe { src.set_len(0) };
    executor.run_spans(ranges, |w, range| {
        // SAFETY: worker `w` touches only its own stride-`num_dests` cursor
        // row (rows are disjoint across workers), and the table outlives the
        // joined scope.
        let cursor = unsafe {
            std::slice::from_raw_parts_mut(cursor_ptr.get().add(w * num_dests), num_dests)
        };
        for i in range {
            let slot = cursor[dests[i]];
            cursor[dests[i]] += 1;
            // SAFETY: ranges are disjoint (each `src[i]` read once) and the
            // cursor windows partition the output (each slot written once);
            // both buffers outlive the joined scope.
            unsafe {
                let t = src_ptr.get().add(i).read();
                out_ptr.get().add(slot).cast::<T>().write(t);
            }
        }
    });
    assume_init_vec(out)
}

/// Like [`scatter_owned`] but applying `f` to each element as it moves:
/// `out[slot(i)] = f(src[i])`. This is the fused map+shuffle superstep — the
/// element is transformed in the single pass that relocates it, so no
/// intermediate arena of mapped-but-unshuffled tuples is ever materialised.
#[allow(unsafe_code)]
pub(crate) fn scatter_map_owned<T: Send, U: Send, F>(
    executor: &Executor,
    mut src: Vec<T>,
    dests: &[usize],
    ranges: &[Range<usize>],
    cursors: &mut [usize],
    num_dests: usize,
    f: F,
) -> Vec<U>
where
    F: Fn(T) -> U + Sync,
{
    let n = src.len();
    assert_eq!(dests.len(), n, "one destination per element required");
    assert_eq!(
        ranges.len() * num_dests,
        cursors.len(),
        "one cursor row per range"
    );
    debug_check_scatter_plan(dests, ranges, cursors, num_dests);
    let mut out = uninit_vec::<U>(n);
    let out_ptr = SendPtr(out.as_mut_ptr());
    let src_ptr = SendPtr(src.as_mut_ptr());
    let cursor_ptr = SendPtr(cursors.as_mut_ptr());
    // SAFETY: as in `permute_owned` — length zeroed before any read.
    unsafe { src.set_len(0) };
    executor.run_spans(ranges, |w, range| {
        // SAFETY: worker `w` touches only its own stride-`num_dests` cursor
        // row (rows are disjoint across workers), and the table outlives the
        // joined scope.
        let cursor = unsafe {
            std::slice::from_raw_parts_mut(cursor_ptr.get().add(w * num_dests), num_dests)
        };
        for i in range {
            let slot = cursor[dests[i]];
            cursor[dests[i]] += 1;
            // SAFETY: ranges are disjoint (each `src[i]` read once) and the
            // cursor windows partition the output (each slot written once);
            // both buffers outlive the joined scope. If `f` panics, the
            // element it consumed is gone but everything else merely leaks
            // (source length is already zero) — no double drop.
            unsafe {
                let t = src_ptr.get().add(i).read();
                out_ptr.get().add(slot).cast::<U>().write(f(t));
            }
        }
    });
    assume_init_vec(out)
}

/// Like [`scatter_owned`] but cloning out of a borrowed source.
#[allow(unsafe_code)]
pub(crate) fn scatter_cloned<T: Clone + Send + Sync>(
    executor: &Executor,
    src: &[T],
    dests: &[usize],
    ranges: &[Range<usize>],
    cursors: &mut [usize],
    num_dests: usize,
) -> Vec<T> {
    let n = src.len();
    assert_eq!(dests.len(), n, "one destination per element required");
    assert_eq!(
        ranges.len() * num_dests,
        cursors.len(),
        "one cursor row per range"
    );
    debug_check_scatter_plan(dests, ranges, cursors, num_dests);
    let mut out = uninit_vec::<T>(n);
    let out_ptr = SendPtr(out.as_mut_ptr());
    let cursor_ptr = SendPtr(cursors.as_mut_ptr());
    executor.run_spans(ranges, |w, range| {
        // SAFETY: worker `w` touches only its own stride-`num_dests` cursor
        // row (rows are disjoint across workers), and the table outlives the
        // joined scope.
        let cursor = unsafe {
            std::slice::from_raw_parts_mut(cursor_ptr.get().add(w * num_dests), num_dests)
        };
        for i in range {
            let slot = cursor[dests[i]];
            cursor[dests[i]] += 1;
            // SAFETY: the cursor windows partition the output, so each slot
            // is written exactly once; the buffer outlives the joined scope.
            unsafe {
                out_ptr.get().add(slot).cast::<T>().write(src[i].clone());
            }
        }
    });
    assume_init_vec(out)
}

/// An owning iterator over one contiguous span of a consumed arena: yields
/// the span's elements *by value* (via `ptr::read`), dropping any elements
/// not consumed when the iterator itself drops — so each element is used
/// exactly once no matter how much of the span the caller takes.
pub(crate) struct SpanDrain<'a, T> {
    base: SendPtr<T>,
    cur: usize,
    end: usize,
    /// Ties the drain to the source buffer's borrow: `consume_spans` is
    /// higher-ranked over this lifetime, so a closure cannot smuggle the
    /// drain out past the buffer's lifetime (that would be a compile
    /// error), keeping the use-after-free impossible by construction.
    _buffer: std::marker::PhantomData<&'a mut [T]>,
}

impl<T> Iterator for SpanDrain<'_, T> {
    type Item = T;

    #[allow(unsafe_code)]
    fn next(&mut self) -> Option<T> {
        if self.cur == self.end {
            return None;
        }
        // SAFETY: `cur < end` stays inside the span, and advancing the
        // cursor guarantees each element is read exactly once.
        unsafe {
            let t = self.base.get().add(self.cur).read();
            self.cur += 1;
            Some(t)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.end - self.cur;
        (left, Some(left))
    }
}

impl<T> ExactSizeIterator for SpanDrain<'_, T> {}

impl<T> Drop for SpanDrain<'_, T> {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        while self.cur != self.end {
            // SAFETY: these elements were never yielded, so this is their
            // only drop.
            unsafe {
                self.base.get().add(self.cur).drop_in_place();
                self.cur += 1;
            }
        }
    }
}

/// Consumes `src` span by span: worker `w` receives `spans[w]`'s elements as
/// an owning [`SpanDrain`] iterator plus the span itself, and the per-span
/// results come back in span order. The spans must tile `0..src.len()`
/// ascending (a [`Executor::worker_spans`]-style split, possibly scaled).
#[allow(unsafe_code)]
pub(crate) fn consume_spans<T, U, F>(
    executor: &Executor,
    mut src: Vec<T>,
    spans: &[Range<usize>],
    f: F,
) -> Vec<U>
where
    T: Send,
    U: Send,
    F: for<'a> Fn(usize, Range<usize>, SpanDrain<'a, T>) -> U + Sync,
{
    let mut expected = 0usize;
    for s in spans {
        assert_eq!(s.start, expected, "spans must tile the source in order");
        expected = s.end;
    }
    assert_eq!(expected, src.len(), "spans must cover the source exactly");
    let base = SendPtr(src.as_mut_ptr());
    // SAFETY: as in `permute_owned` — length zeroed before any read; the
    // drains below read (or drop) each element exactly once.
    unsafe { src.set_len(0) };
    executor.run_spans(spans, |w, range| {
        // Spans are disjoint, so each drain exclusively owns its elements
        // (`SendPtr` is `Send`/`Sync`; dereferences happen inside the drain).
        let drain = SpanDrain {
            base,
            cur: range.start,
            end: range.end,
            _buffer: std::marker::PhantomData,
        };
        f(w, range, drain)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permute_owned_applies_the_permutation() {
        for threads in [1usize, 4] {
            let exec = Executor::threaded(threads);
            let src: Vec<String> = (0..500).map(|i| i.to_string()).collect();
            let pos: Vec<usize> = (0..500).map(|i| (i * 7) % 500).collect(); // 7 ⊥ 500
            let out = permute_owned(&exec, src, &pos);
            for i in 0..500 {
                assert_eq!(out[(i * 7) % 500], i.to_string());
            }
        }
    }

    #[test]
    fn scatter_cloned_matches_owned() {
        let exec = Executor::threaded(3);
        let src: Vec<u64> = (0..300).map(|i| i % 7).collect();
        let dests: Vec<usize> = src.iter().map(|&k| (k % 5) as usize).collect();
        // One worker range per executor span; flat worker-major cursor table
        // from the histograms.
        let ranges = exec.worker_spans(300);
        let mut totals = vec![0usize; 5];
        let mut starts: Vec<Vec<usize>> = Vec::new();
        for r in &ranges {
            starts.push(totals.clone());
            for &d in &dests[r.clone()] {
                totals[d] += 1;
            }
        }
        let mut base = [0usize; 5];
        for d in 1..5 {
            base[d] = base[d - 1] + totals[d - 1];
        }
        let mut cursors: Vec<usize> = starts
            .iter()
            .flat_map(|s| (0..5).map(|d| base[d] + s[d]))
            .collect();
        // The scatter advances cursor rows in place, so each run gets its
        // own copy of the table.
        let mut cursors_owned = cursors.clone();
        let cloned = scatter_cloned(&exec, &src, &dests, &ranges, &mut cursors, 5);
        let owned = scatter_owned(&exec, src, &dests, &ranges, &mut cursors_owned, 5);
        assert_eq!(cloned, owned);
        // After the scatter each cursor row has advanced by its histogram.
        assert_eq!(cursors, cursors_owned);
        assert!(cursors
            .chunks_exact(5)
            .zip(&starts)
            .all(|(row, s)| (0..5).all(|d| row[d] >= base[d] + s[d])));
        // The scatter is a stable counting sort by destination.
        let mut expected_groups: Vec<u64> = Vec::new();
        for d in 0..5u64 {
            expected_groups.extend((0..300u64).map(|i| i % 7).filter(|&k| k % 5 == d));
        }
        assert_eq!(owned, expected_groups);
    }

    #[test]
    fn scatter_map_owned_matches_scatter_then_map() {
        let exec = Executor::threaded(3);
        let src: Vec<u64> = (0..300).map(|i| i * 3 % 101).collect();
        let dests: Vec<usize> = src.iter().map(|&k| (k % 5) as usize).collect();
        let ranges = exec.worker_spans(300);
        let mut totals = vec![0usize; 5];
        let mut starts: Vec<Vec<usize>> = Vec::new();
        for r in &ranges {
            starts.push(totals.clone());
            for &d in &dests[r.clone()] {
                totals[d] += 1;
            }
        }
        let mut base = [0usize; 5];
        for d in 1..5 {
            base[d] = base[d - 1] + totals[d - 1];
        }
        let mut cursors: Vec<usize> = starts
            .iter()
            .flat_map(|s| (0..5).map(|d| base[d] + s[d]))
            .collect();
        let mut cursors_fused = cursors.clone();
        let unfused: Vec<String> =
            scatter_owned(&exec, src.clone(), &dests, &ranges, &mut cursors, 5)
                .into_iter()
                .map(|k: u64| format!("<{k}>"))
                .collect();
        let fused = scatter_map_owned(&exec, src, &dests, &ranges, &mut cursors_fused, 5, |k| {
            format!("<{k}>")
        });
        assert_eq!(fused, unfused);
        assert_eq!(cursors, cursors_fused);
    }

    #[test]
    fn map_owned_moves_without_cloning() {
        let exec = Executor::threaded(4);
        let src: Vec<Box<u64>> = (0..1000u64).map(Box::new).collect();
        let out = map_owned(&exec, src, |b| *b * 2);
        assert_eq!(out[499], 998);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn consume_spans_hands_out_disjoint_drains() {
        let exec = Executor::threaded(4);
        let src: Vec<u64> = (0..1000).collect();
        let spans = exec.element_spans(1000);
        let sums = consume_spans(&exec, src, &spans, |_w, _range, drain| drain.sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), 999 * 1000 / 2);
    }

    #[test]
    fn unconsumed_drain_elements_are_dropped_not_leaked() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let exec = Executor::sequential();
        let src: Vec<Counted> = (0..100).map(|_| Counted).collect();
        let spans = vec![0..50, 50..100];
        // Take only 10 elements from each span; the rest must still drop.
        let taken = consume_spans(&exec, src, &spans, |_w, _range, mut drain| {
            let mut count = 0;
            for _ in 0..10 {
                if drain.next().is_some() {
                    count += 1;
                }
            }
            count
        });
        assert_eq!(taken, vec![10, 10]);
        assert_eq!(DROPS.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let exec = Executor::threaded(8);
        assert!(permute_owned(&exec, Vec::<u64>::new(), &[]).is_empty());
        assert!(map_owned(&exec, Vec::<u64>::new(), |x| x).is_empty());
        let none: Vec<u64> =
            consume_spans(&exec, Vec::new(), &[], |_, _, d: SpanDrain<'_, u64>| {
                d.sum()
            });
        assert!(none.is_empty());
    }
}
