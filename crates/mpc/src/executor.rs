//! The pluggable parallel execution backend for the simulator.
//!
//! Every layer of the workspace that fans work out over simulated machines,
//! vertices, or edge chunks routes it through an [`Executor`] instead of a
//! bare `for` loop. Two backends exist:
//!
//! * [`ExecutorBackend::Sequential`] — runs every unit of work inline on the
//!   calling thread, in index order (the historical behaviour of the
//!   simulator).
//! * [`ExecutorBackend::Threaded`] — splits the index space into contiguous
//!   per-worker ranges and runs them on scoped OS threads
//!   (`std::thread::scope`; no external dependencies).
//!
//! **Determinism contract.** Both backends produce *bit-identical* results
//! for the same inputs: work units are pure functions of their index (callers
//! derive any randomness from per-index ChaCha8 streams, never from a shared
//! generator), and results are reassembled in index order regardless of which
//! worker computed them. Anything order-sensitive — round charges, memory
//! accounting, error selection — happens on the calling thread after the
//! fan-in, via [`WorkerStats`](crate::stats::WorkerStats) merges. The
//! cross-backend determinism test in `tests/executor_determinism.rs` pins
//! this contract down for the full pipeline.
//!
//! The thread count is usually carried by
//! [`MpcConfig::threads`](crate::MpcConfig::threads); `0` means "resolve from
//! the `WCC_THREADS` environment variable, defaulting to 1", which is how the
//! experiment binaries are switched between backends without code changes.

use std::ops::Range;

/// Which execution backend an [`Executor`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorBackend {
    /// Run all work inline on the calling thread.
    Sequential,
    /// Run work on up to `threads` scoped OS threads.
    Threaded {
        /// Maximum number of worker threads (clamped to at least 1).
        threads: usize,
    },
}

/// Environment variable consulted when a thread count of `0` ("auto") is
/// resolved: `WCC_THREADS=4` selects the threaded backend with 4 workers.
pub const THREADS_ENV_VAR: &str = "WCC_THREADS";

/// A handle to an execution backend. Cheap to copy; carries only the worker
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// The sequential backend.
    pub fn sequential() -> Self {
        Executor { threads: 1 }
    }

    /// The threaded backend with `threads` workers (1 degenerates to the
    /// sequential backend; 0 is clamped to 1).
    pub fn threaded(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// Builds an executor from an explicit backend choice.
    pub fn new(backend: ExecutorBackend) -> Self {
        match backend {
            ExecutorBackend::Sequential => Executor::sequential(),
            ExecutorBackend::Threaded { threads } => Executor::threaded(threads),
        }
    }

    /// Resolves a config-level thread count: `0` means "read
    /// [`THREADS_ENV_VAR`], defaulting to 1"; any other value is used as-is.
    pub fn resolve(threads: usize) -> Self {
        if threads > 0 {
            return Executor::threaded(threads);
        }
        Executor::from_env()
    }

    /// Reads the backend from [`THREADS_ENV_VAR`] (unset, empty or
    /// unparseable means sequential).
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV_VAR)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        Executor::threaded(threads)
    }

    /// Number of worker threads this executor uses (1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` if work runs inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// The backend this executor uses, in canonical form: one worker IS the
    /// sequential backend, so `Threaded { threads: 1 }` deliberately reports
    /// as `Sequential` (the enum names the two behaviours, not the
    /// construction history). This is the extension point future backends
    /// (async, sharded) widen.
    pub fn backend(&self) -> ExecutorBackend {
        if self.threads == 1 {
            ExecutorBackend::Sequential
        } else {
            ExecutorBackend::Threaded {
                threads: self.threads,
            }
        }
    }

    /// Minimum indices a worker must receive before [`Executor::map_indexed`]
    /// spawns threads: fine-grained fan-outs smaller than this run inline,
    /// because OS-thread spawn latency would dominate the per-index work.
    /// (Purely a performance cutoff — results are identical either way.)
    pub const MIN_INDICES_PER_WORKER: usize = 64;

    /// Contiguous per-worker ranges covering `0..n` in order, engaging at
    /// most `n / min_per_worker` workers. The split depends only on `n`, the
    /// worker count and the floor — never on runtime timing.
    fn worker_ranges(&self, n: usize, min_per_worker: usize) -> Vec<Range<usize>> {
        let workers = self.threads.min(n / min_per_worker.max(1)).min(n).max(1);
        let chunk = n.div_ceil(workers).max(1);
        (0..workers)
            .map(|w| (w * chunk).min(n)..((w + 1) * chunk).min(n))
            .filter(|r| !r.is_empty())
            .collect()
    }

    /// The deterministic *coarse* work split over `0..n`: the contiguous
    /// per-worker ranges [`Executor::map_ranges`] would hand its workers
    /// (units are whole simulated machines, so any `n > 1` splits). Exposed
    /// so callers can precompute per-worker state — histogram cursors,
    /// per-worker accumulators — that must line up range-for-range with a
    /// later fan-out over the same split.
    pub fn worker_spans(&self, n: usize) -> Vec<Range<usize>> {
        self.worker_ranges(n, 1)
    }

    /// The deterministic *fine* work split over `0..n`: like
    /// [`Executor::worker_spans`] but treating indices as fine-grained items
    /// (a tuple, a vertex), so fan-outs smaller than
    /// [`Executor::MIN_INDICES_PER_WORKER`] per worker collapse to fewer
    /// ranges, exactly as [`Executor::map_indexed`] would.
    pub fn element_spans(&self, n: usize) -> Vec<Range<usize>> {
        self.worker_ranges(n, Self::MIN_INDICES_PER_WORKER)
    }

    /// Runs `f` once per *given* contiguous range, in parallel, returning the
    /// results in range order. The ranges must be exactly the caller's
    /// precomputed [`Executor::worker_spans`] / [`Executor::element_spans`]
    /// split (ascending, disjoint); each worker also receives its range
    /// index.
    pub(crate) fn run_spans<U, F>(&self, spans: &[Range<usize>], f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, Range<usize>) -> U + Sync,
    {
        if self.threads <= 1 || spans.len() <= 1 {
            return spans
                .iter()
                .enumerate()
                .map(|(i, r)| f(i, r.clone()))
                .collect();
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = spans
                .iter()
                .enumerate()
                .map(|(i, range)| {
                    let range = range.clone();
                    scope.spawn(move || f(i, range))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("executor worker panicked"))
                .collect()
        })
    }

    /// Splits `data` into the given contiguous ranges (which must tile
    /// `0..data.len()` in ascending order — normally a
    /// [`Executor::worker_spans`] / [`Executor::element_spans`] split scaled
    /// to the data) and runs `f` on each mutable chunk concurrently,
    /// returning the per-chunk results in range order. This is the safe
    /// primitive behind every in-place parallel pass over the flat tuple
    /// arena: disjoint `&mut` chunks are carved with `split_at_mut`, so no
    /// two workers can alias.
    ///
    /// # Panics
    ///
    /// Panics if the ranges do not tile `0..data.len()` exactly.
    pub fn map_slices_mut<T, U, F>(&self, data: &mut [T], ranges: &[Range<usize>], f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut [T]) -> U + Sync,
    {
        // The single-buffer pass is the pair pass with an empty companion
        // (zero-length ranges trivially tile an empty slice), so validation
        // and carving live in exactly one place.
        let mut empty: [(); 0] = [];
        let empty_ranges = vec![0..0; ranges.len()];
        self.map_slices_mut_pair(data, ranges, &mut empty, &empty_ranges, |i, chunk, _| {
            f(i, chunk)
        })
    }

    /// Like [`Executor::map_slices_mut`], but carving **two** buffers at
    /// once: worker `i` receives `a[a_ranges[i]]` and `b[b_ranges[i]]` as
    /// disjoint mutable chunks. Both range lists must tile their buffers
    /// exactly and have the same length (one pair per worker). This is the
    /// primitive behind the counting shuffle's single-sweep pass that fills
    /// the destination table and the per-worker histograms together without
    /// allocating either.
    ///
    /// # Panics
    ///
    /// Panics if the range lists have different lengths or either fails to
    /// tile its buffer.
    pub fn map_slices_mut_pair<T1, T2, U, F>(
        &self,
        a: &mut [T1],
        a_ranges: &[Range<usize>],
        b: &mut [T2],
        b_ranges: &[Range<usize>],
        f: F,
    ) -> Vec<U>
    where
        T1: Send,
        T2: Send,
        U: Send,
        F: Fn(usize, &mut [T1], &mut [T2]) -> U + Sync,
    {
        assert_eq!(
            a_ranges.len(),
            b_ranges.len(),
            "one range pair per worker required"
        );
        for (ranges, len) in [(a_ranges, a.len()), (b_ranges, b.len())] {
            let mut expected = 0usize;
            for r in ranges {
                assert_eq!(r.start, expected, "ranges must tile the data in order");
                assert!(r.end >= r.start, "ranges must be ascending");
                expected = r.end;
            }
            assert_eq!(expected, len, "ranges must cover the data exactly");
        }
        if self.threads <= 1 || a_ranges.len() <= 1 {
            let mut out = Vec::with_capacity(a_ranges.len());
            let (mut rest_a, mut rest_b) = (a, b);
            for (i, (ra, rb)) in a_ranges.iter().zip(b_ranges).enumerate() {
                let (head_a, tail_a) = rest_a.split_at_mut(ra.len());
                let (head_b, tail_b) = rest_b.split_at_mut(rb.len());
                rest_a = tail_a;
                rest_b = tail_b;
                out.push(f(i, head_a, head_b));
            }
            return out;
        }
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(a_ranges.len());
            let (mut rest_a, mut rest_b) = (a, b);
            for (i, (ra, rb)) in a_ranges.iter().zip(b_ranges).enumerate() {
                let (head_a, tail_a) = rest_a.split_at_mut(ra.len());
                let (head_b, tail_b) = rest_b.split_at_mut(rb.len());
                rest_a = tail_a;
                rest_b = tail_b;
                handles.push(scope.spawn(move || f(i, head_a, head_b)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("executor worker panicked"))
                .collect()
        })
    }

    /// Fan-out returning a single flat vector: applies `f` to each range of
    /// the fine [`Executor::element_spans`] split of `0..n` and concatenates
    /// the per-range outputs in range order into one pre-sized allocation.
    /// The result is identical to `(0..n).flat_map(per-index work)` as long
    /// as `f` emits its range's items in index order — the usual replacement
    /// for `map_indexed(..).flatten()` chains that would otherwise allocate
    /// one vector per index.
    pub fn flat_map_ranges<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(Range<usize>) -> Vec<U> + Sync,
    {
        let spans = self.element_spans(n);
        let parts = self.run_spans(&spans, |_w, range| f(range));
        let total: usize = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Applies `f` to every index in `0..n` and returns the results in index
    /// order. `f` must be a pure function of its index for the determinism
    /// contract to hold.
    ///
    /// Indices are treated as fine-grained (a vertex, a query, an edge):
    /// fan-outs with fewer than [`Executor::MIN_INDICES_PER_WORKER`] indices
    /// per worker run inline rather than paying thread-spawn latency.
    pub fn map_indexed<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let per_worker = self.run_ranges(n, Self::MIN_INDICES_PER_WORKER, |range| {
            range.map(&f).collect::<Vec<U>>()
        });
        let mut out = Vec::with_capacity(n);
        for chunk in per_worker {
            out.extend(chunk);
        }
        out
    }

    /// Applies `f` to every item of `items` (with its index) and returns the
    /// results in item order.
    pub fn map_items<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.map_indexed(items.len(), |i| f(i, &items[i]))
    }

    /// Splits `0..n` into contiguous per-worker ranges, runs `f` once per
    /// range, and returns the per-range results in range order. This is the
    /// primitive behind per-worker accumulators
    /// ([`WorkerStats`](crate::stats::WorkerStats), shuffle buckets): the
    /// caller merges the returned values in order, which is deterministic as
    /// long as the merge is associative over adjacent ranges.
    ///
    /// Unlike [`Executor::map_indexed`], indices here are treated as
    /// *coarse* units (a whole simulated machine): any `n > 1` fans out.
    pub fn map_ranges<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(Range<usize>) -> U + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if self.threads <= 1 {
            return vec![f(0..n)];
        }
        self.run_ranges(n, 1, |range| f(range.start..range.end))
    }

    /// Shared scoped-thread driver: one spawned worker per non-empty range,
    /// results joined in range order.
    fn run_ranges<U, F>(&self, n: usize, min_per_worker: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(Range<usize>) -> U + Sync,
    {
        self.run_spans(&self.worker_ranges(n, min_per_worker), |_w, range| f(range))
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::sequential()
    }
}

/// Derives a per-stream seed from a master draw and a stream index, using the
/// SplitMix64 finaliser twice so adjacent indices produce unrelated seeds.
///
/// This is the workspace-wide convention for giving every machine / vertex /
/// chunk its own ChaCha8 stream: the caller draws `base` *once* from the
/// master generator (advancing it by the same amount for every backend and
/// thread count), then worker `i` seeds `ChaCha8Rng::seed_from_u64(
/// derive_stream_seed(base, i))`.
pub fn derive_stream_seed(base: u64, index: u64) -> u64 {
    let mut x = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 27)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order_across_backends() {
        let n = 1003;
        let sequential = Executor::sequential().map_indexed(n, |i| i * i);
        for threads in [2, 3, 8, 64] {
            let threaded = Executor::threaded(threads).map_indexed(n, |i| i * i);
            assert_eq!(sequential, threaded, "threads={threads}");
        }
    }

    #[test]
    fn map_items_passes_indices_and_items() {
        let items: Vec<u64> = (0..57).map(|i| i * 10).collect();
        let out = Executor::threaded(4).map_items(&items, |i, &x| (i as u64, x));
        assert_eq!(out.len(), 57);
        for (i, &(idx, x)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(x, i as u64 * 10);
        }
    }

    #[test]
    fn map_ranges_covers_the_index_space_exactly_once() {
        for threads in [1, 2, 5, 16] {
            let ranges = Executor::threaded(threads).map_ranges(100, |r| r.collect::<Vec<_>>());
            let flat: Vec<usize> = ranges.into_iter().flatten().collect();
            assert_eq!(flat, (0..100).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn map_slices_mut_pair_carves_both_buffers_disjointly() {
        for threads in [1usize, 4] {
            let exec = Executor::threaded(threads);
            let mut data = vec![0u64; 100];
            let mut acc = vec![0u64; 8];
            let data_ranges = vec![0..25, 25..60, 60..60, 60..100];
            let acc_ranges = vec![0..2, 2..4, 4..6, 6..8];
            let sums = exec.map_slices_mut_pair(
                &mut data,
                &data_ranges,
                &mut acc,
                &acc_ranges,
                |w, chunk, slot| {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x = (w * 1000 + j) as u64;
                        slot[0] += *x;
                    }
                    slot[1] = chunk.len() as u64;
                    slot[0]
                },
            );
            assert_eq!(sums.len(), 4, "threads={threads}");
            assert_eq!(acc[1], 25);
            assert_eq!(acc[5], 0);
            assert_eq!(acc[7], 40);
            assert_eq!(data[25], 1000);
            assert_eq!(sums[2], 0);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_handled() {
        let exec = Executor::threaded(8);
        assert!(exec.map_indexed(0, |i| i).is_empty());
        assert_eq!(exec.map_indexed(1, |i| i), vec![0]);
        assert!(exec.map_ranges(0, |r| r.len()).is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = Executor::threaded(32).map_indexed(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn resolve_zero_reads_environment() {
        // Can't mutate the environment safely in a test binary that runs
        // threads, so just check explicit resolution paths.
        assert_eq!(Executor::resolve(1).threads(), 1);
        assert_eq!(Executor::resolve(6).threads(), 6);
        assert!(Executor::resolve(0).threads() >= 1);
    }

    #[test]
    fn backend_round_trips() {
        assert_eq!(
            Executor::new(ExecutorBackend::Sequential).backend(),
            ExecutorBackend::Sequential
        );
        assert_eq!(
            Executor::new(ExecutorBackend::Threaded { threads: 4 }).backend(),
            ExecutorBackend::Threaded { threads: 4 }
        );
        assert!(Executor::threaded(1).is_sequential());
        assert!(!Executor::threaded(2).is_sequential());
    }

    #[test]
    fn derived_stream_seeds_are_distinct() {
        let base = 0xDEAD_BEEF;
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_stream_seed(base, i)), "collision at {i}");
        }
        // Different bases give different streams for the same index.
        assert_ne!(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
    }
}
