//! The pluggable parallel execution backend for the simulator.
//!
//! Every layer of the workspace that fans work out over simulated machines,
//! vertices, or edge chunks routes it through an [`Executor`] instead of a
//! bare `for` loop. Two backends exist:
//!
//! * [`ExecutorBackend::Sequential`] — runs every unit of work inline on the
//!   calling thread, in index order (the historical behaviour of the
//!   simulator).
//! * [`ExecutorBackend::Threaded`] — runs work on a **persistent worker
//!   pool** ([`pool`](crate::pool) module; no external dependencies):
//!   workers are spawned once, lazily, on the first threaded dispatch, park
//!   on a condvar between fan-outs, and each fan-out costs one epoch bump +
//!   wakeup instead of N `std::thread::scope` spawns. The index space is
//!   split into up to [`CHUNKS_PER_WORKER`]×threads contiguous chunks
//!   claimed dynamically through an atomic cursor, so skewed per-chunk work
//!   load-balances without affecting results.
//!
//! **Determinism contract.** Both backends produce *bit-identical* results
//! for the same inputs: work units are pure functions of their index (callers
//! derive any randomness from per-index ChaCha8 streams, never from a shared
//! generator), and results are reassembled in index order regardless of which
//! worker computed them — chunk claiming order is timing-dependent, chunk
//! *placement* is not. Anything order-sensitive — round charges, memory
//! accounting, error selection — happens on the calling thread after the
//! fan-in, via [`WorkerStats`](crate::stats::WorkerStats) merges. The
//! cross-backend determinism test in `tests/executor_determinism.rs` pins
//! this contract down for the full pipeline.
//!
//! The thread count is usually carried by
//! [`MpcConfig::threads`](crate::MpcConfig::threads); `0` means "resolve from
//! the `WCC_THREADS` environment variable". In the environment variable
//! itself, `0` means "use [`Executor::auto_threads`]", i.e. one worker per
//! available CPU (`std::thread::available_parallelism`); an unset, empty or
//! unparseable variable still means sequential.

use std::ops::Range;
use std::sync::{Arc, Mutex, OnceLock};

use crate::pool::{self, PoolProbe, PoolTelemetry, WorkerPool, CHUNKS_PER_WORKER};

/// Which execution backend an [`Executor`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorBackend {
    /// Run all work inline on the calling thread.
    Sequential,
    /// Run work on a persistent pool of `threads` parked workers.
    Threaded {
        /// Maximum number of worker threads (clamped to at least 1).
        threads: usize,
    },
}

/// Environment variable consulted when a thread count of `0` ("auto") is
/// resolved: `WCC_THREADS=4` selects the threaded backend with 4 workers,
/// `WCC_THREADS=0` selects one worker per available CPU.
pub const THREADS_ENV_VAR: &str = "WCC_THREADS";

/// A handle to an execution backend. Cheap to clone; clones share the same
/// lazily-created worker pool, and executors resolved independently with the
/// same thread count share one process-wide pool per count (so an
/// `MpcContext` and the `Cluster`s it drives never spawn duplicate worker
/// sets). Dropping the last executor that owns a pool shuts its workers down
/// and joins them.
#[derive(Clone)]
pub struct Executor {
    threads: usize,
    /// The pool cell. Empty until the first threaded dispatch; never filled
    /// for sequential executors (`threads == 1` dispatches inline).
    pool: Arc<OnceLock<Arc<WorkerPool>>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .field("pool_started", &self.pool.get().is_some())
            .finish()
    }
}

/// Executors compare by configuration (thread count) only — two executors
/// with the same count are interchangeable by the determinism contract,
/// whether or not they happen to share a pool instance.
impl PartialEq for Executor {
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads
    }
}

impl Eq for Executor {}

impl Executor {
    /// The sequential backend.
    pub fn sequential() -> Self {
        Executor::threaded(1)
    }

    /// The threaded backend with `threads` workers (1 degenerates to the
    /// sequential backend; 0 is clamped to 1). Workers are not spawned until
    /// the first dispatch that engages more than one chunk.
    pub fn threaded(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
            pool: Arc::new(OnceLock::new()),
        }
    }

    /// Like [`Executor::threaded`], but with a pool that is **not** shared
    /// with other executors of the same thread count. Lifecycle tests use
    /// this to observe one pool's spawn/park/shutdown behaviour in
    /// isolation; production callers want the sharing default.
    pub fn with_private_pool(threads: usize) -> Self {
        let threads = threads.max(1);
        let cell = OnceLock::new();
        let _ = cell.set(Arc::new(WorkerPool::new(threads)));
        Executor {
            threads,
            pool: Arc::new(cell),
        }
    }

    /// Builds an executor from an explicit backend choice.
    pub fn new(backend: ExecutorBackend) -> Self {
        match backend {
            ExecutorBackend::Sequential => Executor::sequential(),
            ExecutorBackend::Threaded { threads } => Executor::threaded(threads),
        }
    }

    /// Resolves a config-level thread count: `0` means "read
    /// [`THREADS_ENV_VAR`]" (see [`Executor::from_env`]); any other value is
    /// used as-is.
    pub fn resolve(threads: usize) -> Self {
        if threads > 0 {
            return Executor::threaded(threads);
        }
        Executor::from_env()
    }

    /// One worker per CPU the process can use
    /// (`std::thread::available_parallelism`), defaulting to 1 if the
    /// parallelism cannot be queried.
    pub fn auto_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Reads the backend from [`THREADS_ENV_VAR`]: a positive value selects
    /// that many workers, `0` selects [`Executor::auto_threads`] workers
    /// (one per available CPU), and an unset, empty or unparseable variable
    /// means sequential.
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV_VAR)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(0) => Executor::threaded(Self::auto_threads()),
            Some(n) => Executor::threaded(n),
            None => Executor::sequential(),
        }
    }

    /// Number of worker threads this executor uses (1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` if work runs inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// The backend this executor uses, in canonical form: one worker IS the
    /// sequential backend, so `Threaded { threads: 1 }` deliberately reports
    /// as `Sequential` (the enum names the two behaviours, not the
    /// construction history). This is the extension point future backends
    /// (async, sharded) widen.
    pub fn backend(&self) -> ExecutorBackend {
        if self.threads == 1 {
            ExecutorBackend::Sequential
        } else {
            ExecutorBackend::Threaded {
                threads: self.threads,
            }
        }
    }

    /// The pool, created (or fetched from the per-count process registry) on
    /// first use.
    fn pool(&self) -> &Arc<WorkerPool> {
        self.pool.get_or_init(|| pool::obtain_shared(self.threads))
    }

    /// Telemetry snapshot of this executor's pool, or `None` if no threaded
    /// dispatch has created one yet (sequential executors never do).
    pub fn pool_telemetry(&self) -> Option<PoolTelemetry> {
        self.pool.get().map(|p| p.counters().snapshot())
    }

    /// Process-wide pool telemetry: cumulative counters across every pool
    /// that ever existed in this process. This is what `wcc --json` reports,
    /// so a run's dispatch behaviour is visible without threading a pool
    /// handle through the algorithm layers.
    pub fn process_pool_telemetry() -> PoolTelemetry {
        pool::global_snapshot()
    }

    /// A live handle onto this executor's pool counters that does **not**
    /// keep the pool alive — lifecycle tests use it to watch `live_workers`
    /// fall to zero after the executor is dropped. Forces pool creation.
    pub fn pool_telemetry_probe(&self) -> PoolProbe {
        PoolProbe(self.pool().counters())
    }

    /// Minimum indices a chunk must receive before [`Executor::map_indexed`]
    /// fans out: fine-grained fan-outs smaller than this run inline, because
    /// dispatch latency would dominate the per-index work. (Purely a
    /// performance cutoff — results are identical either way.)
    pub const MIN_INDICES_PER_WORKER: usize = 64;

    /// Contiguous chunk ranges covering `0..n` in order: up to
    /// [`CHUNKS_PER_WORKER`]×threads chunks (so fast workers can claim
    /// extra chunks when per-chunk work is skewed), engaging at most
    /// `n / min_per_worker` chunks. The split depends only on `n`, the
    /// thread count and the floor — never on runtime timing.
    fn worker_ranges(&self, n: usize, min_per_worker: usize) -> Vec<Range<usize>> {
        let target = if self.threads > 1 {
            self.threads.saturating_mul(CHUNKS_PER_WORKER)
        } else {
            1
        };
        let chunks = target.min(n / min_per_worker.max(1)).min(n).max(1);
        pool::split_ranges(n, chunks)
    }

    /// The deterministic *coarse* work split over `0..n`: the contiguous
    /// chunk ranges [`Executor::map_ranges`] would hand its workers (units
    /// are whole simulated machines, so any `n > 1` splits). Exposed so
    /// callers can precompute per-chunk state — histogram cursors, per-chunk
    /// accumulators — that must line up range-for-range with a later fan-out
    /// over the same split.
    pub fn worker_spans(&self, n: usize) -> Vec<Range<usize>> {
        self.worker_ranges(n, 1)
    }

    /// The deterministic *fine* work split over `0..n`: like
    /// [`Executor::worker_spans`] but treating indices as fine-grained items
    /// (a tuple, a vertex), so fan-outs smaller than
    /// [`Executor::MIN_INDICES_PER_WORKER`] per chunk collapse to fewer
    /// ranges, exactly as [`Executor::map_indexed`] would.
    pub fn element_spans(&self, n: usize) -> Vec<Range<usize>> {
        self.worker_ranges(n, Self::MIN_INDICES_PER_WORKER)
    }

    /// The core dispatch: runs `g` once per index in `0..n` and returns the
    /// results in index order — inline for the sequential backend, via the
    /// pool's chunk-claiming epoch otherwise. A dispatch attempted from
    /// inside a pool epoch (a nested fan-out) runs inline too, which keeps
    /// nesting correct without epoch re-entrancy.
    fn run_chunked<U, G>(&self, n: usize, g: G) -> Vec<U>
    where
        U: Send,
        G: Fn(usize) -> U + Sync,
    {
        if self.threads <= 1 || n <= 1 || pool::in_pool_context() {
            return (0..n).map(g).collect();
        }
        self.pool().run_chunks(n, g)
    }

    /// Runs `f` once per *given* contiguous range, in parallel, returning the
    /// results in range order. The ranges must be exactly the caller's
    /// precomputed [`Executor::worker_spans`] / [`Executor::element_spans`]
    /// split (ascending, disjoint); each chunk also receives its range
    /// index.
    pub(crate) fn run_spans<U, F>(&self, spans: &[Range<usize>], f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, Range<usize>) -> U + Sync,
    {
        self.run_chunked(spans.len(), |i| f(i, spans[i].clone()))
    }

    /// Splits `data` into the given contiguous ranges (which must tile
    /// `0..data.len()` in ascending order — normally a
    /// [`Executor::worker_spans`] / [`Executor::element_spans`] split scaled
    /// to the data) and runs `f` on each mutable chunk concurrently,
    /// returning the per-chunk results in range order. This is the safe
    /// primitive behind every in-place parallel pass over the flat tuple
    /// arena: disjoint `&mut` chunks are carved with `split_at_mut`, so no
    /// two workers can alias.
    ///
    /// # Panics
    ///
    /// Panics if the ranges do not tile `0..data.len()` exactly.
    pub fn map_slices_mut<T, U, F>(&self, data: &mut [T], ranges: &[Range<usize>], f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut [T]) -> U + Sync,
    {
        // The single-buffer pass is the pair pass with an empty companion
        // (zero-length ranges trivially tile an empty slice), so validation
        // and carving live in exactly one place.
        let mut empty: [(); 0] = [];
        let empty_ranges = vec![0..0; ranges.len()];
        self.map_slices_mut_pair(data, ranges, &mut empty, &empty_ranges, |i, chunk, _| {
            f(i, chunk)
        })
    }

    /// Like [`Executor::map_slices_mut`], but carving **two** buffers at
    /// once: chunk `i` receives `a[a_ranges[i]]` and `b[b_ranges[i]]` as
    /// disjoint mutable chunks. Both range lists must tile their buffers
    /// exactly and have the same length (one pair per chunk). This is the
    /// primitive behind the counting shuffle's single-sweep pass that fills
    /// the destination table and the per-chunk histograms together without
    /// allocating either.
    ///
    /// # Panics
    ///
    /// Panics if the range lists have different lengths or either fails to
    /// tile its buffer.
    pub fn map_slices_mut_pair<T1, T2, U, F>(
        &self,
        a: &mut [T1],
        a_ranges: &[Range<usize>],
        b: &mut [T2],
        b_ranges: &[Range<usize>],
        f: F,
    ) -> Vec<U>
    where
        T1: Send,
        T2: Send,
        U: Send,
        F: Fn(usize, &mut [T1], &mut [T2]) -> U + Sync,
    {
        assert_eq!(
            a_ranges.len(),
            b_ranges.len(),
            "one range pair per worker required"
        );
        for (ranges, len) in [(a_ranges, a.len()), (b_ranges, b.len())] {
            let mut expected = 0usize;
            for r in ranges {
                assert_eq!(r.start, expected, "ranges must tile the data in order");
                assert!(r.end >= r.start, "ranges must be ascending");
                expected = r.end;
            }
            assert_eq!(expected, len, "ranges must cover the data exactly");
        }
        if self.threads <= 1 || a_ranges.len() <= 1 || pool::in_pool_context() {
            let mut out = Vec::with_capacity(a_ranges.len());
            let (mut rest_a, mut rest_b) = (a, b);
            for (i, (ra, rb)) in a_ranges.iter().zip(b_ranges).enumerate() {
                let (head_a, tail_a) = rest_a.split_at_mut(ra.len());
                let (head_b, tail_b) = rest_b.split_at_mut(rb.len());
                rest_a = tail_a;
                rest_b = tail_b;
                out.push(f(i, head_a, head_b));
            }
            return out;
        }
        // Carve every disjoint chunk pair up front (cheap: pointer
        // arithmetic), park each in a take-once slot, and let the pool's
        // chunk claiming hand pair `i` to whichever worker claims index `i`.
        type ChunkPair<'s, T1, T2> = Mutex<Option<(&'s mut [T1], &'s mut [T2])>>;
        let mut slots: Vec<ChunkPair<'_, T1, T2>> = Vec::with_capacity(a_ranges.len());
        let (mut rest_a, mut rest_b) = (a, b);
        for (ra, rb) in a_ranges.iter().zip(b_ranges) {
            let (head_a, tail_a) = rest_a.split_at_mut(ra.len());
            let (head_b, tail_b) = rest_b.split_at_mut(rb.len());
            rest_a = tail_a;
            rest_b = tail_b;
            slots.push(Mutex::new(Some((head_a, head_b))));
        }
        self.pool().run_chunks(a_ranges.len(), |i| {
            let (chunk_a, chunk_b) = slots[i]
                .lock()
                .expect("slice slot poisoned")
                .take()
                .expect("each chunk pair is claimed exactly once");
            f(i, chunk_a, chunk_b)
        })
    }

    /// Fan-out returning a single flat vector: applies `f` to each range of
    /// the fine [`Executor::element_spans`] split of `0..n` and concatenates
    /// the per-range outputs in range order into one pre-sized allocation.
    /// The result is identical to `(0..n).flat_map(per-index work)` as long
    /// as `f` emits its range's items in index order — the usual replacement
    /// for `map_indexed(..).flatten()` chains that would otherwise allocate
    /// one vector per index.
    pub fn flat_map_ranges<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(Range<usize>) -> Vec<U> + Sync,
    {
        let spans = self.element_spans(n);
        let parts = self.run_spans(&spans, |_w, range| f(range));
        let total: usize = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Applies `f` to every index in `0..n` and returns the results in index
    /// order. `f` must be a pure function of its index for the determinism
    /// contract to hold.
    ///
    /// Indices are treated as fine-grained (a vertex, a query, an edge):
    /// fan-outs with fewer than [`Executor::MIN_INDICES_PER_WORKER`] indices
    /// per chunk run inline rather than paying dispatch latency.
    pub fn map_indexed<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let per_worker = self.run_ranges(n, Self::MIN_INDICES_PER_WORKER, |range| {
            range.map(&f).collect::<Vec<U>>()
        });
        let mut out = Vec::with_capacity(n);
        for chunk in per_worker {
            out.extend(chunk);
        }
        out
    }

    /// Applies `f` to every item of `items` (with its index) and returns the
    /// results in item order.
    pub fn map_items<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.map_indexed(items.len(), |i| f(i, &items[i]))
    }

    /// Splits `0..n` into contiguous chunk ranges, runs `f` once per range,
    /// and returns the per-range results in range order. This is the
    /// primitive behind per-worker accumulators
    /// ([`WorkerStats`](crate::stats::WorkerStats), shuffle buckets): the
    /// caller merges the returned values in order, which is deterministic as
    /// long as the merge is associative over adjacent ranges.
    ///
    /// Unlike [`Executor::map_indexed`], indices here are treated as
    /// *coarse* units (a whole simulated machine): any `n > 1` fans out.
    pub fn map_ranges<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(Range<usize>) -> U + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if self.threads <= 1 {
            return vec![f(0..n)];
        }
        self.run_ranges(n, 1, |range| f(range.start..range.end))
    }

    /// Shared chunked driver over a fresh split of `0..n`.
    fn run_ranges<U, F>(&self, n: usize, min_per_worker: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(Range<usize>) -> U + Sync,
    {
        self.run_spans(&self.worker_ranges(n, min_per_worker), |_w, range| f(range))
    }

    /// The pre-pool threaded backend, kept verbatim as a **measurement
    /// reference**: one fresh `std::thread::scope` spawn per range, joined
    /// in range order. The `executor_dispatch_overhead` benchmark times this
    /// against the pooled [`Executor::map_ranges`] to quantify what the pool
    /// saves per fan-out, and the differential test in
    /// `tests/executor_determinism.rs` pins both paths to identical output.
    /// Not used by any production dispatch.
    pub fn map_ranges_scoped_reference<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(Range<usize>) -> U + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if self.threads <= 1 {
            return vec![f(0..n)];
        }
        self.run_spans_scoped(&self.worker_ranges(n, 1), |_w, range| f(range))
    }

    /// Scoped-spawn reference for [`Executor::map_indexed`] (see
    /// [`Executor::map_ranges_scoped_reference`]).
    pub fn map_indexed_scoped_reference<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let spans = self.worker_ranges(n, Self::MIN_INDICES_PER_WORKER);
        let per_worker =
            self.run_spans_scoped(&spans, |_w, range| range.map(&f).collect::<Vec<U>>());
        let mut out = Vec::with_capacity(n);
        for chunk in per_worker {
            out.extend(chunk);
        }
        out
    }

    /// The old scoped-thread driver: one spawned OS thread per range, every
    /// fan-out. Only the `*_scoped_reference` methods call this.
    fn run_spans_scoped<U, F>(&self, spans: &[Range<usize>], f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, Range<usize>) -> U + Sync,
    {
        if spans.len() <= 1 {
            return spans
                .iter()
                .enumerate()
                .map(|(i, r)| f(i, r.clone()))
                .collect();
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = spans
                .iter()
                .enumerate()
                .map(|(i, range)| {
                    let range = range.clone();
                    scope.spawn(move || f(i, range))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("executor worker panicked"))
                .collect()
        })
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::sequential()
    }
}

/// Derives a per-stream seed from a master draw and a stream index, using the
/// SplitMix64 finaliser twice so adjacent indices produce unrelated seeds.
///
/// This is the workspace-wide convention for giving every machine / vertex /
/// chunk its own ChaCha8 stream: the caller draws `base` *once* from the
/// master generator (advancing it by the same amount for every backend and
/// thread count), then worker `i` seeds `ChaCha8Rng::seed_from_u64(
/// derive_stream_seed(base, i))`.
pub fn derive_stream_seed(base: u64, index: u64) -> u64 {
    let mut x = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 27)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order_across_backends() {
        let n = 1003;
        let sequential = Executor::sequential().map_indexed(n, |i| i * i);
        for threads in [2, 3, 8, 64] {
            let threaded = Executor::threaded(threads).map_indexed(n, |i| i * i);
            assert_eq!(sequential, threaded, "threads={threads}");
        }
    }

    #[test]
    fn map_items_passes_indices_and_items() {
        let items: Vec<u64> = (0..57).map(|i| i * 10).collect();
        let out = Executor::threaded(4).map_items(&items, |i, &x| (i as u64, x));
        assert_eq!(out.len(), 57);
        for (i, &(idx, x)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(x, i as u64 * 10);
        }
    }

    #[test]
    fn map_ranges_covers_the_index_space_exactly_once() {
        for threads in [1, 2, 5, 16] {
            let ranges = Executor::threaded(threads).map_ranges(100, |r| r.collect::<Vec<_>>());
            let flat: Vec<usize> = ranges.into_iter().flatten().collect();
            assert_eq!(flat, (0..100).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn scoped_reference_matches_pooled_dispatch() {
        for threads in [1, 2, 4] {
            let exec = Executor::threaded(threads);
            let pooled = exec.map_indexed(777, |i| i * 3 + 1);
            let scoped = exec.map_indexed_scoped_reference(777, |i| i * 3 + 1);
            assert_eq!(pooled, scoped, "threads={threads}");
            let pooled: Vec<usize> = exec
                .map_ranges(100, |r| r.collect::<Vec<_>>())
                .into_iter()
                .flatten()
                .collect();
            let scoped: Vec<usize> = exec
                .map_ranges_scoped_reference(100, |r| r.collect::<Vec<_>>())
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(pooled, scoped, "threads={threads}");
        }
    }

    #[test]
    fn worker_spans_oversplit_for_chunk_claiming() {
        // threads=1 keeps one span; threads>1 oversplits up to 4x threads so
        // fast workers can steal chunks; the floor caps the split.
        assert_eq!(Executor::threaded(1).worker_spans(100).len(), 1);
        assert_eq!(
            Executor::threaded(4).worker_spans(160).len(),
            4 * CHUNKS_PER_WORKER
        );
        assert_eq!(Executor::threaded(4).worker_spans(3).len(), 3);
        assert_eq!(Executor::threaded(4).element_spans(100).len(), 1);
        assert_eq!(Executor::threaded(4).element_spans(64 * 9).len(), 9);
    }

    #[test]
    fn map_slices_mut_pair_carves_both_buffers_disjointly() {
        for threads in [1usize, 4] {
            let exec = Executor::threaded(threads);
            let mut data = vec![0u64; 100];
            let mut acc = vec![0u64; 8];
            let data_ranges = vec![0..25, 25..60, 60..60, 60..100];
            let acc_ranges = vec![0..2, 2..4, 4..6, 6..8];
            let sums = exec.map_slices_mut_pair(
                &mut data,
                &data_ranges,
                &mut acc,
                &acc_ranges,
                |w, chunk, slot| {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x = (w * 1000 + j) as u64;
                        slot[0] += *x;
                    }
                    slot[1] = chunk.len() as u64;
                    slot[0]
                },
            );
            assert_eq!(sums.len(), 4, "threads={threads}");
            assert_eq!(acc[1], 25);
            assert_eq!(acc[5], 0);
            assert_eq!(acc[7], 40);
            assert_eq!(data[25], 1000);
            assert_eq!(sums[2], 0);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_handled() {
        let exec = Executor::threaded(8);
        assert!(exec.map_indexed(0, |i| i).is_empty());
        assert_eq!(exec.map_indexed(1, |i| i), vec![0]);
        assert!(exec.map_ranges(0, |r| r.len()).is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = Executor::threaded(32).map_indexed(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn resolve_zero_reads_environment() {
        // Can't mutate the environment safely in a test binary that runs
        // threads, so just check explicit resolution paths.
        assert_eq!(Executor::resolve(1).threads(), 1);
        assert_eq!(Executor::resolve(6).threads(), 6);
        assert!(Executor::resolve(0).threads() >= 1);
        assert!(Executor::auto_threads() >= 1);
    }

    #[test]
    fn backend_round_trips() {
        assert_eq!(
            Executor::new(ExecutorBackend::Sequential).backend(),
            ExecutorBackend::Sequential
        );
        assert_eq!(
            Executor::new(ExecutorBackend::Threaded { threads: 4 }).backend(),
            ExecutorBackend::Threaded { threads: 4 }
        );
        assert!(Executor::threaded(1).is_sequential());
        assert!(!Executor::threaded(2).is_sequential());
    }

    #[test]
    fn derived_stream_seeds_are_distinct() {
        let base = 0xDEAD_BEEF;
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_stream_seed(base, i)), "collision at {i}");
        }
        // Different bases give different streams for the same index.
        assert_ne!(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
    }
}
