//! The execution layer: simulated machines holding tuples, with
//! map / shuffle / broadcast supersteps that enforce the memory budget.
//!
//! The [`Cluster`] stores its tuples in a **flat arena**: one contiguous
//! `Vec<T>` plus a CSR-style machine-offset table, so machine `i`'s tuples
//! are the slice `arena[offsets[i]..offsets[i + 1]]`. The job of the layer
//! is still *fidelity* — a shuffle really re-partitions tuples by key,
//! really costs one round, and really fails (or records a violation) when
//! some machine would exceed its memory budget — but the layout makes the
//! simulator cheap enough to push real workloads through: local ops touch
//! one allocation instead of one per machine, consuming variants
//! (`map_local_owned`, `shuffle_by_key_owned`, …) move tuples instead of
//! cloning them, and [`Cluster::shuffle_by_key`] is a two-pass *counting
//! shuffle* (parallel per-worker destination histograms, an exclusive
//! prefix-sum offset table, then a parallel scatter straight into the
//! preallocated output arena) rather than a clone-into-buckets pass.
//! Two further reductions in bytes moved: a `map_local_owned` immediately
//! followed (or preceded) by a shuffle can run as one *fused* superstep
//! ([`Cluster::shuffle_map_owned`] / [`Cluster::map_shuffle_owned`]) whose
//! scatter applies the transform while relocating, skipping the
//! intermediate arena entirely; and a shuffle whose counting pass proves
//! the routing is the identity permutation (every tuple already sits on its
//! destination machine) skips the scatter and reuses the arena — with the
//! model cost (rounds, words) charged unchanged in both cases.
//!
//! Aggregation is sort-based: [`Cluster::reduce_by_key`]'s combiner passes
//! cache each machine's tuple keys once, stably argsort them with an 8-bit
//! radix pass and fold the equal-key runs in one linear scan — no per-machine
//! `HashMap`s. All shuffle and sort scratch (destination tables, per-worker
//! histograms, cursor tables, key caches) lives in the [`MpcContext`] and is
//! reused across successive supersteps, so a steady-state shuffle or
//! reduction allocates only its output. The hash-based aggregation survives
//! verbatim as [`Cluster::reduce_by_key_hashmap`], the executable spec the
//! sort-based path is differentially tested (and benchmarked) against.
//!
//! Per-machine work fans out through the cluster's [`Executor`]: with the
//! threaded backend the simulated machines really do compute concurrently,
//! while the results — tuple order, statistics, errors — stay bit-identical
//! to the sequential backend (see the determinism contract in
//! [`crate::executor`]). The counting shuffle preserves the historical
//! tuple order exactly: within each destination machine, tuples appear in
//! global source order (machine-major), which is what the old
//! bucket-merge-by-worker fan-in produced.

use std::ops::Range;

use crate::arena;
use crate::config::{MpcConfig, MpcError};
use crate::executor::Executor;
use crate::radix::{RadixScratch, ShuffleScratch};
use crate::stats::{MpcContext, WorkerStats};

/// Tuples that carry an intrinsic shuffle key.
///
/// Implemented for `(u64, V)` pairs, the workhorse format of every algorithm
/// in this workspace (key = the vertex or component the tuple is routed to).
pub trait KeyedTuple {
    /// The key the tuple is routed by during a shuffle.
    fn key(&self) -> u64;
}

impl<V> KeyedTuple for (u64, V) {
    fn key(&self) -> u64 {
        self.0
    }
}

/// A set of tuples partitioned across simulated machines, stored as a flat
/// arena plus a machine-offset table.
#[derive(Debug, Clone)]
pub struct Cluster<T> {
    /// All tuples, machine-major: machine `i` owns
    /// `arena[offsets[i]..offsets[i + 1]]`.
    arena: Vec<T>,
    /// CSR-style offsets; `offsets.len() == num_machines + 1`,
    /// `offsets[0] == 0`, non-decreasing, last entry `== arena.len()`.
    offsets: Vec<usize>,
    /// Words per tuple used for memory accounting (default 2: a key and a
    /// value word).
    words_per_tuple: usize,
    /// Backend driving per-machine work; inherited by derived clusters.
    executor: Executor,
}

impl<T> Cluster<T> {
    /// Distributes `tuples` round-robin across `config.num_machines` machines
    /// (the paper assumes the input is distributed adversarially but evenly;
    /// round-robin is the even distribution with no helpful locality). The
    /// cluster adopts the execution backend selected by `config.threads`.
    pub fn from_tuples(config: &MpcConfig, tuples: Vec<T>) -> Self
    where
        T: Send,
    {
        let m = config.num_machines.max(1);
        let n = tuples.len();
        let executor = config.executor();
        // Machine j receives indices j, j + m, j + 2m, …: its count and the
        // arena position of every tuple are closed-form, so the arena is
        // built by one parallel permutation instead of m growing vectors.
        let mut offsets = Vec::with_capacity(m + 1);
        offsets.push(0usize);
        for j in 0..m {
            let count = if j < n % m { n / m + 1 } else { n / m };
            offsets.push(offsets[j] + count);
        }
        let pos: Vec<usize> = (0..n).map(|i| offsets[i % m] + i / m).collect();
        Cluster {
            arena: arena::permute_owned(&executor, tuples, &pos),
            offsets,
            words_per_tuple: 2,
            executor,
        }
    }

    /// Overrides the number of words each tuple is charged for.
    pub fn with_words_per_tuple(mut self, words: usize) -> Self {
        self.words_per_tuple = words.max(1);
        self
    }

    /// Charges each tuple its *natural* width,
    /// `⌈size_of::<T>() / 8⌉` words ([`crate::compact::natural_words_per_tuple`]):
    /// a `u64`-packed compact edge charges 1 word where the historical
    /// default charges 2. Opt-in — the default stays 2 words so existing
    /// callers' recorded model quantities are unchanged.
    pub fn with_natural_width(self) -> Self {
        let words = crate::compact::natural_words_per_tuple::<T>();
        self.with_words_per_tuple(words)
    }

    /// Builds a cluster directly from explicit per-machine partitions.
    /// Used by tests and the primitives in [`crate::primitives`]; not itself
    /// an MPC operation (no rounds are charged). Runs on the sequential
    /// backend unless [`Cluster::with_executor`] is applied.
    pub fn from_partitions(machines: Vec<Vec<T>>) -> Self {
        let mut offsets = Vec::with_capacity(machines.len() + 1);
        offsets.push(0usize);
        for m in &machines {
            offsets.push(offsets.last().unwrap() + m.len());
        }
        let mut arena = Vec::with_capacity(*offsets.last().unwrap());
        for m in machines {
            arena.extend(m);
        }
        Cluster {
            arena,
            offsets,
            words_per_tuple: 2,
            executor: Executor::sequential(),
        }
    }

    /// Builds a cluster directly from a flat arena and its machine-offset
    /// table (`offsets.len() == machines + 1`, starting at 0, non-decreasing
    /// and ending at `arena.len()`). The zero-copy counterpart of
    /// [`Cluster::from_partitions`]; not an MPC operation.
    ///
    /// # Panics
    ///
    /// Panics if the offset table is malformed.
    pub fn from_arena(arena: Vec<T>, offsets: Vec<usize>) -> Self {
        assert!(
            offsets.first() == Some(&0) && offsets.last() == Some(&arena.len()),
            "offsets must start at 0 and end at the arena length"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        Cluster {
            arena,
            offsets,
            words_per_tuple: 2,
            executor: Executor::sequential(),
        }
    }

    /// Overrides the execution backend driving per-machine work.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// The execution backend this cluster's supersteps run on.
    pub fn executor(&self) -> Executor {
        self.executor.clone()
    }

    /// Words each tuple is charged for in memory accounting.
    pub fn words_per_tuple(&self) -> usize {
        self.words_per_tuple
    }

    /// Number of simulated machines.
    pub fn num_machines(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of tuples across all machines.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Returns `true` if the cluster holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// The tuples currently resident on machine `i` (a zero-copy slice of
    /// the arena).
    pub fn machine(&self, i: usize) -> &[T] {
        &self.arena[self.offsets[i]..self.offsets[i + 1]]
    }

    /// The machine-offset table: machine `i` owns arena positions
    /// `offsets()[i]..offsets()[i + 1]`.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The largest per-machine load, in words.
    pub fn max_load_words(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) * self.words_per_tuple)
            .max()
            .unwrap_or(0)
    }

    /// Collects all tuples into one vector (an *inspection* helper for tests
    /// and drivers — not an MPC operation, hence no context argument). With
    /// the arena layout this is free: the arena *is* the machine-order
    /// concatenation.
    pub fn gather(self) -> Vec<T> {
        self.arena
    }

    /// Applies `f` to every tuple locally, in parallel over arena chunks.
    /// Local computation is free in the MPC model, so no rounds are charged.
    pub fn map_local<U, F>(&self, f: F) -> Cluster<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        Cluster {
            arena: self
                .executor
                .map_indexed(self.arena.len(), |i| f(&self.arena[i])),
            offsets: self.offsets.clone(),
            words_per_tuple: self.words_per_tuple,
            executor: self.executor.clone(),
        }
    }

    /// Consuming variant of [`Cluster::map_local`]: moves every tuple into
    /// `f` instead of borrowing it, so `T → U` chains (the common
    /// `shuffle → map → shuffle` pattern) reuse the arena's elements without
    /// cloning. The machine partition is unchanged.
    pub fn map_local_owned<U, F>(self, f: F) -> Cluster<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        Cluster {
            arena: arena::map_owned(&self.executor, self.arena, &f),
            offsets: self.offsets,
            words_per_tuple: self.words_per_tuple,
            executor: self.executor.clone(),
        }
    }

    /// In-place variant of [`Cluster::map_local`] for `T → T` updates:
    /// mutates every tuple where it sits, allocating nothing.
    pub fn map_local_in_place<F>(&mut self, f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        let spans = self.executor.element_spans(self.arena.len());
        self.executor
            .map_slices_mut(&mut self.arena, &spans, |_w, chunk| {
                for t in chunk {
                    f(t);
                }
            });
    }

    /// Applies `f` to every tuple locally, producing zero or more outputs per
    /// input. Free, like [`Cluster::map_local`].
    pub fn flat_map_local<U, I, F>(&self, f: F) -> Cluster<U>
    where
        T: Sync,
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(&T) -> I + Sync,
    {
        let parts = self
            .executor
            .map_indexed(self.num_machines(), |m| -> Vec<U> {
                self.machine(m).iter().flat_map(&f).collect()
            });
        self.rebuild_from_machine_parts(parts)
    }

    /// Consuming variant of [`Cluster::flat_map_local`]: moves every tuple
    /// into `f`.
    pub fn flat_map_local_owned<U, I, F>(self, f: F) -> Cluster<U>
    where
        T: Send,
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let executor = self.executor.clone();
        let words_per_tuple = self.words_per_tuple;
        let machine_sizes: Vec<usize> = self.offsets.windows(2).map(|w| w[1] - w[0]).collect();
        let worker_machines = executor.worker_spans(self.num_machines());
        let spans: Vec<Range<usize>> = worker_machines
            .iter()
            .map(|r| self.offsets[r.start]..self.offsets[r.end])
            .collect();
        // Each worker drains its machines in order, emitting one output
        // vector per machine so the offset table can be rebuilt.
        let nested: Vec<Vec<Vec<U>>> =
            arena::consume_spans(&executor, self.arena, &spans, |w, _range, mut drain| {
                worker_machines[w]
                    .clone()
                    .map(|mi| {
                        drain
                            .by_ref()
                            .take(machine_sizes[mi])
                            .flat_map(&f)
                            .collect::<Vec<U>>()
                    })
                    .collect()
            });
        let parts: Vec<Vec<U>> = nested.into_iter().flatten().collect();
        from_machine_parts(parts, words_per_tuple, executor)
    }

    /// Drops tuples not satisfying `keep`. Free (local).
    pub fn filter_local<F>(&self, keep: F) -> Cluster<T>
    where
        T: Clone + Send + Sync,
        F: Fn(&T) -> bool + Sync,
    {
        let parts = self
            .executor
            .map_indexed(self.num_machines(), |m| -> Vec<T> {
                self.machine(m)
                    .iter()
                    .filter(|t| keep(t))
                    .cloned()
                    .collect()
            });
        self.rebuild_from_machine_parts(parts)
    }

    /// In-place variant of [`Cluster::filter_local`]: compacts the arena with
    /// a single stable pass (no allocation, no clones), updating the offset
    /// table to the surviving counts. The predicate runs sequentially in
    /// arena order, so it may carry state (`FnMut`) — the dedup primitive
    /// uses this to drop run-continuation duplicates.
    pub fn filter_local_in_place<F>(&mut self, mut keep: F)
    where
        F: FnMut(&T) -> bool,
    {
        let m = self.num_machines();
        let mut kept = vec![0usize; m];
        let mut idx = 0usize;
        let mut machine = 0usize;
        let offsets = &self.offsets;
        self.arena.retain(|t| {
            while idx >= offsets[machine + 1] {
                machine += 1;
            }
            idx += 1;
            let keep_it = keep(t);
            if keep_it {
                kept[machine] += 1;
            }
            keep_it
        });
        let mut offsets = Vec::with_capacity(m + 1);
        offsets.push(0usize);
        for k in kept {
            offsets.push(offsets.last().unwrap() + k);
        }
        self.offsets = offsets;
    }

    /// Stitches per-machine output vectors (one per machine, in machine
    /// order) into a fresh cluster sharing this one's accounting and backend.
    fn rebuild_from_machine_parts<U>(&self, parts: Vec<Vec<U>>) -> Cluster<U> {
        from_machine_parts(parts, self.words_per_tuple, self.executor.clone())
    }

    /// The counting pass of the two-pass counting shuffle: computes each
    /// tuple's destination machine, the per-worker exclusive-prefix-sum
    /// write cursors, and the output machine-offset table.
    ///
    /// Workers own contiguous runs of whole source machines; each records
    /// its tuples' destinations plus a destination histogram — both written
    /// straight into `scratch` buffers reused across shuffles on the same
    /// context, so a steady-state shuffle allocates only its output arena.
    /// The histograms fold into the output offset table (destination-major)
    /// and per-worker cursors (worker-major within a destination), so the
    /// scatter pass that follows places tuples in exactly the historical
    /// order: within a destination machine, global source order. The cached
    /// destinations also mean the scatter never recomputes `key(t)`.
    fn counting_shuffle_plan<F>(&self, key: &F, scratch: &mut ShuffleScratch) -> ShufflePlan
    where
        T: Sync,
        F: Fn(&T) -> u64 + Sync,
    {
        let n = self.arena.len();
        let m = self.num_machines().max(1);
        if n == 0 {
            scratch.dests.clear();
            scratch.cursors.clear();
            return ShufflePlan {
                ranges: Vec::new(),
                dest_offsets: vec![0; m + 1],
            };
        }
        let worker_machines = self.executor.worker_spans(self.num_machines());
        let ranges: Vec<Range<usize>> = worker_machines
            .iter()
            .map(|r| self.offsets[r.start]..self.offsets[r.end])
            .collect();
        let workers = ranges.len();
        let arena = &self.arena;
        // Pass 1: destinations + per-worker histograms, one sweep filling
        // both scratch tables (disjoint chunks / rows per worker).
        scratch.dests.clear();
        scratch.dests.resize(n, 0);
        scratch.histograms.clear();
        scratch.histograms.resize(workers * m, 0);
        let hist_ranges: Vec<Range<usize>> = (0..workers).map(|w| w * m..(w + 1) * m).collect();
        self.executor.map_slices_mut_pair(
            &mut scratch.dests,
            &ranges,
            &mut scratch.histograms,
            &hist_ranges,
            |w, chunk, histogram| {
                let start = ranges[w].start;
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let dest = (splitmix64(key(&arena[start + j])) % m as u64) as usize;
                    *slot = dest;
                    histogram[dest] += 1;
                }
            },
        );
        // Exclusive prefix sums: destination-major, worker-major within a
        // destination — the write cursor of worker `w` for destination `d`
        // starts where the previous workers' `d`-tuples end.
        let mut dest_offsets = vec![0usize; m + 1];
        for w in 0..workers {
            for (slot, &h) in dest_offsets[1..]
                .iter_mut()
                .zip(&scratch.histograms[w * m..(w + 1) * m])
            {
                *slot += h;
            }
        }
        let mut acc = 0usize;
        for slot in dest_offsets.iter_mut() {
            acc += *slot;
            *slot = acc;
        }
        scratch.cursors.clear();
        scratch.cursors.resize(workers * m, 0);
        for (d, &base) in dest_offsets[..m].iter().enumerate() {
            let mut acc = base;
            for w in 0..workers {
                scratch.cursors[w * m + d] = acc;
                acc += scratch.histograms[w * m + d];
            }
        }
        ShufflePlan {
            ranges,
            dest_offsets,
        }
    }

    /// Shared accounting tail of every shuffle variant: charges the round
    /// (model words at `words_per_tuple`, host bytes at
    /// `wire_bytes_per_tuple` — the size of the representation that actually
    /// crosses the simulated wire) and checks every destination machine's
    /// load, in machine order.
    fn charge_and_check_shuffle(
        &self,
        ctx: &mut MpcContext,
        dest_offsets: &[usize],
        wire_bytes_per_tuple: usize,
    ) -> Result<(), MpcError> {
        ctx.charge_shuffle_with_bytes(
            self.arena.len() * self.words_per_tuple,
            self.arena.len() * wire_bytes_per_tuple,
        );
        let budget = ctx.config().memory_per_machine;
        let mut loads = WorkerStats::new();
        loads.record_span_loads(dest_offsets, self.words_per_tuple, budget);
        ctx.absorb_workers([loads])
    }

    /// Returns `true` iff every tuple's planned destination is the machine
    /// it already occupies. In that case the stable counting scatter is the
    /// identity permutation — destination-major grouping equals the current
    /// machine-major grouping, and within each machine "global source order"
    /// is the current order — so the arena can be reused as-is. The *model*
    /// cost is unchanged (the round and the traffic are still charged: in
    /// the MPC model every machine still sends its tuples, the simulator
    /// just skips re-materialising an arena it can prove is bit-identical;
    /// see DESIGN.md §8).
    fn plan_is_identity(&self, dests: &[usize]) -> bool {
        self.offsets
            .windows(2)
            .enumerate()
            .all(|(machine, w)| dests[w[0]..w[1]].iter().all(|&d| d == machine))
    }

    /// One communication superstep: re-partitions every tuple to machine
    /// `hash(key) % num_machines`, so that all tuples sharing a key land on
    /// the same machine. Charges exactly one round and `len()` tuples of
    /// traffic, and enforces the per-machine memory budget on the result.
    ///
    /// Implemented as a two-pass counting shuffle (see
    /// [`Cluster::counting_shuffle_plan`]) followed by one parallel scatter
    /// that clones each tuple straight into its final arena position — no
    /// intermediate per-worker bucket vectors. Destination loads are checked
    /// through [`WorkerStats`] in machine order, so the result — including
    /// which machine a strict-mode overflow reports — is identical on every
    /// backend. Use [`Cluster::shuffle_by_key_owned`] to move instead of
    /// clone.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::MemoryExceeded`] in strict mode if any destination
    /// machine would exceed its budget.
    pub fn shuffle_by_key<F>(&self, ctx: &mut MpcContext, key: F) -> Result<Cluster<T>, MpcError>
    where
        T: Clone + Send + Sync,
        F: Fn(&T) -> u64 + Sync,
    {
        let mut scratch = ctx.take_scratch();
        let plan = self.counting_shuffle_plan(&key, &mut scratch);
        let m = self.num_machines().max(1);
        let arena = if self.plan_is_identity(&scratch.dests) {
            debug_assert_eq!(plan.dest_offsets, self.offsets);
            self.arena.clone()
        } else {
            arena::scatter_cloned(
                &self.executor,
                &self.arena,
                &scratch.dests,
                &plan.ranges,
                &mut scratch.cursors,
                m,
            )
        };
        ctx.restore_scratch(scratch);
        let check =
            self.charge_and_check_shuffle(ctx, &plan.dest_offsets, std::mem::size_of::<T>());
        let result = Cluster {
            arena,
            offsets: plan.dest_offsets,
            words_per_tuple: self.words_per_tuple,
            executor: self.executor.clone(),
        };
        check.map(|()| result)
    }

    /// Consuming variant of [`Cluster::shuffle_by_key`]: the scatter *moves*
    /// every tuple into its destination slot, so no `Clone` bound and no
    /// per-tuple copy. Same cost accounting, same deterministic output
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::MemoryExceeded`] in strict mode if any destination
    /// machine would exceed its budget.
    pub fn shuffle_by_key_owned<F>(
        self,
        ctx: &mut MpcContext,
        key: F,
    ) -> Result<Cluster<T>, MpcError>
    where
        T: Send + Sync,
        F: Fn(&T) -> u64 + Sync,
    {
        let mut scratch = ctx.take_scratch();
        let plan = self.counting_shuffle_plan(&key, &mut scratch);
        let check =
            self.charge_and_check_shuffle(ctx, &plan.dest_offsets, std::mem::size_of::<T>());
        let m = self.num_machines().max(1);
        let arena = if self.plan_is_identity(&scratch.dests) {
            debug_assert_eq!(plan.dest_offsets, self.offsets);
            self.arena
        } else {
            arena::scatter_owned(
                &self.executor,
                self.arena,
                &scratch.dests,
                &plan.ranges,
                &mut scratch.cursors,
                m,
            )
        };
        ctx.restore_scratch(scratch);
        let result = Cluster {
            arena,
            offsets: plan.dest_offsets,
            words_per_tuple: self.words_per_tuple,
            executor: self.executor.clone(),
        };
        check.map(|()| result)
    }

    /// Fused *shuffle-then-map* superstep: equivalent to
    /// `self.shuffle_by_key_owned(ctx, key)?.map_local_owned(f)` — identical
    /// output, statistics and errors — but the transform is applied in the
    /// single scatter pass that relocates each tuple, so the intermediate
    /// arena of shuffled-but-unmapped tuples is never materialised. The
    /// unfused sequence is the executable specification this op is
    /// differentially tested against (`tests/cluster_properties.rs`).
    ///
    /// The wire cost is that of the shuffle: `len()` tuples of `T` (the map
    /// happens after the communication round, on the destination machines).
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::MemoryExceeded`] in strict mode if any destination
    /// machine would exceed its budget.
    pub fn shuffle_map_owned<U, K, F>(
        self,
        ctx: &mut MpcContext,
        key: K,
        f: F,
    ) -> Result<Cluster<U>, MpcError>
    where
        T: Send + Sync,
        U: Send,
        K: Fn(&T) -> u64 + Sync,
        F: Fn(T) -> U + Sync,
    {
        self.fused_shuffle_owned(ctx, key, f, std::mem::size_of::<T>())
    }

    /// Fused *map-then-shuffle* superstep: equivalent to
    /// `self.map_local_owned(f).shuffle_by_key_owned(ctx, key)` for any
    /// `key` satisfying the **legality rule** below — identical output,
    /// statistics and errors — again skipping the intermediate arena.
    ///
    /// **Legality rule**: `route_key(&t) == key(&f(t))` for every tuple,
    /// i.e. the routing key of a tuple must be computable *before* the map.
    /// This is what lets the counting pass run on the unmapped arena while
    /// the scatter emits mapped tuples; it is the caller's contract (the
    /// differential tests pin it for the workspace's uses) and cannot be
    /// checked here because `key` is never materialised — see DESIGN.md §8.
    ///
    /// The wire cost is that of the *mapped* representation: the map happens
    /// before the communication round, so `len()` tuples of `U` cross the
    /// wire. Routing a wide tuple by a pre-computable key while shipping
    /// only its compact image is exactly the narrowing superstep of the
    /// compact data plane.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::MemoryExceeded`] in strict mode if any destination
    /// machine would exceed its budget.
    pub fn map_shuffle_owned<U, F, R>(
        self,
        ctx: &mut MpcContext,
        f: F,
        route_key: R,
    ) -> Result<Cluster<U>, MpcError>
    where
        T: Send + Sync,
        U: Send,
        R: Fn(&T) -> u64 + Sync,
        F: Fn(T) -> U + Sync,
    {
        self.fused_shuffle_owned(ctx, route_key, f, std::mem::size_of::<U>())
    }

    /// Shared body of the fused supersteps: one counting pass keyed on the
    /// *source* tuples, one scatter that applies `f` while moving. The two
    /// public wrappers differ only in which representation they charge for
    /// (`T` when the map runs after the wire, `U` when it runs before).
    fn fused_shuffle_owned<U, K, F>(
        self,
        ctx: &mut MpcContext,
        key: K,
        f: F,
        wire_bytes_per_tuple: usize,
    ) -> Result<Cluster<U>, MpcError>
    where
        T: Send + Sync,
        U: Send,
        K: Fn(&T) -> u64 + Sync,
        F: Fn(T) -> U + Sync,
    {
        let mut scratch = ctx.take_scratch();
        let plan = self.counting_shuffle_plan(&key, &mut scratch);
        let check = self.charge_and_check_shuffle(ctx, &plan.dest_offsets, wire_bytes_per_tuple);
        let m = self.num_machines().max(1);
        let arena = if self.plan_is_identity(&scratch.dests) {
            debug_assert_eq!(plan.dest_offsets, self.offsets);
            // The relocation is the identity, but the map still runs.
            arena::map_owned(&self.executor, self.arena, &f)
        } else {
            arena::scatter_map_owned(
                &self.executor,
                self.arena,
                &scratch.dests,
                &plan.ranges,
                &mut scratch.cursors,
                m,
                f,
            )
        };
        ctx.restore_scratch(scratch);
        let result = Cluster {
            arena,
            offsets: plan.dest_offsets,
            words_per_tuple: self.words_per_tuple,
            executor: self.executor.clone(),
        };
        check.map(|()| result)
    }

    /// Shuffle followed by a per-key reduction: tuples with equal keys are
    /// folded with `fold` starting from `init(key)`, and partial accumulators
    /// from different machines are merged with `combine`.
    ///
    /// To stay within machine memory even when one key is very frequent, a
    /// *combiner* pass pre-aggregates locally before the shuffle (the
    /// standard MapReduce optimisation); the shuffle therefore moves at most
    /// one partial accumulator per (machine, key) pair. Charges one round.
    ///
    /// The combiner is **sort-based**: each machine's tuple keys are cached
    /// once, stably argsorted with an 8-bit radix pass
    /// ([`RadixScratch`]), and the equal-key runs folded with one linear
    /// scan — no per-machine `HashMap`, and all sort buffers are reused
    /// across machines, workers and successive calls on the same context.
    /// Partials are emitted key-sorted per machine, so the returned pairs
    /// are in a deterministic order (grouped by destination machine,
    /// first-seen order within each group) on every backend, run-to-run,
    /// and bit-identical to the retained hash-based reference
    /// ([`Cluster::reduce_by_key_hashmap`]).
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::MemoryExceeded`] in strict mode if a destination
    /// machine would exceed its budget.
    pub fn reduce_by_key<A, K, I, FO>(
        &self,
        ctx: &mut MpcContext,
        key: K,
        init: I,
        fold: FO,
        combine: impl FnMut(&mut A, A),
    ) -> Result<Vec<(u64, A)>, MpcError>
    where
        T: Sync,
        A: Clone + Send,
        K: Fn(&T) -> u64 + Sync,
        I: Fn(u64) -> A + Sync,
        FO: Fn(&mut A, &T) + Sync,
    {
        let executor = self.executor.clone();
        let worker_machines = executor.worker_spans(self.num_machines());
        let mut scratch = ctx.take_scratch();
        let combined: Vec<Vec<(u64, A)>> = {
            // Local combiner pass (free: purely local computation). Workers
            // own contiguous machine runs; worker `w` locks only radix slot
            // `w`, so the scratch pool is contention-free.
            let pool = scratch.radix_pool(worker_machines.len());
            let nested: Vec<Vec<Vec<(u64, A)>>> =
                executor.run_spans(&worker_machines, |w, machines| {
                    let mut radix = pool[w].lock().expect("radix scratch lock");
                    machines
                        .map(|mi| {
                            combine_machine_radix(self.machine(mi), &key, &init, &fold, &mut radix)
                        })
                        .collect()
                });
            nested.into_iter().flatten().collect()
        };
        let result = route_and_merge_partials(
            ctx,
            self.num_machines(),
            self.words_per_tuple,
            combined,
            combine,
            &mut scratch,
        );
        ctx.restore_scratch(scratch);
        result
    }

    /// Consuming variant of [`Cluster::reduce_by_key`]: `fold` receives each
    /// tuple *by value*, so accumulators can absorb owned data (strings,
    /// vectors) without cloning. Uses the same sort-based combiner; tuples
    /// are buffered per machine (one worker-local buffer reused across the
    /// worker's machines), permuted into key order in place, and folded run
    /// by run.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::MemoryExceeded`] in strict mode if a destination
    /// machine would exceed its budget.
    pub fn reduce_by_key_owned<A, K, I, FO>(
        self,
        ctx: &mut MpcContext,
        key: K,
        init: I,
        fold: FO,
        combine: impl FnMut(&mut A, A),
    ) -> Result<Vec<(u64, A)>, MpcError>
    where
        T: Send,
        A: Clone + Send,
        K: Fn(&T) -> u64 + Sync,
        I: Fn(u64) -> A + Sync,
        FO: Fn(&mut A, T) + Sync,
    {
        let executor = self.executor.clone();
        let machine_sizes: Vec<usize> = self.offsets.windows(2).map(|w| w[1] - w[0]).collect();
        let worker_machines = executor.worker_spans(self.num_machines());
        let spans: Vec<Range<usize>> = worker_machines
            .iter()
            .map(|r| self.offsets[r.start]..self.offsets[r.end])
            .collect();
        let num_machines = self.num_machines();
        let words_per_tuple = self.words_per_tuple;
        let mut scratch = ctx.take_scratch();
        let combined: Vec<Vec<(u64, A)>> = {
            let pool = scratch.radix_pool(spans.len());
            let nested: Vec<Vec<Vec<(u64, A)>>> =
                arena::consume_spans(&executor, self.arena, &spans, |w, _range, mut drain| {
                    let mut radix = pool[w].lock().expect("radix scratch lock");
                    let mut buf: Vec<T> = Vec::new();
                    worker_machines[w]
                        .clone()
                        .map(|mi| {
                            buf.clear();
                            buf.extend(drain.by_ref().take(machine_sizes[mi]));
                            combine_machine_radix_owned(&mut buf, &key, &init, &fold, &mut radix)
                        })
                        .collect()
                });
            nested.into_iter().flatten().collect()
        };
        let result = route_and_merge_partials(
            ctx,
            num_machines,
            words_per_tuple,
            combined,
            combine,
            &mut scratch,
        );
        ctx.restore_scratch(scratch);
        result
    }

    /// The hash-based `reduce_by_key` this crate used before the sort-based
    /// combiner landed, retained verbatim as the **executable specification**:
    /// differential tests (`tests/cluster_properties.rs`) and the
    /// `bench_pipeline` radix-vs-hashmap group assert/measure
    /// [`Cluster::reduce_by_key`] against it. Output and statistics are
    /// bit-identical; only the aggregation machinery differs.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::MemoryExceeded`] in strict mode if a destination
    /// machine would exceed its budget.
    pub fn reduce_by_key_hashmap<A, K, I, FO>(
        &self,
        ctx: &mut MpcContext,
        key: K,
        init: I,
        fold: FO,
        combine: impl FnMut(&mut A, A),
    ) -> Result<Vec<(u64, A)>, MpcError>
    where
        T: Sync,
        A: Clone + Send,
        K: Fn(&T) -> u64 + Sync,
        I: Fn(u64) -> A + Sync,
        FO: Fn(&mut A, &T) + Sync,
    {
        // Local combiner pass, one machine per work unit.
        let combined: Vec<Vec<(u64, A)>> = self.executor.map_indexed(self.num_machines(), |mi| {
            combine_machine_hashmap(
                self.machine(mi).iter(),
                &|t: &&T| key(t),
                &init,
                |acc: &mut A, t: &T| fold(acc, t),
            )
        });
        route_and_merge_partials_hashmap(
            ctx,
            self.num_machines(),
            self.words_per_tuple,
            combined,
            combine,
        )
    }
}

/// The communication half shared by both `reduce_by_key` variants: routes
/// each machine's key-sorted partials to `hash(key) % m`, checks destination
/// loads, and merges equal keys in first-seen order.
///
/// Sort-based: partials are counting-sorted into destination buckets (one
/// flat allocation, arrival order preserved), then each bucket is radix
/// argsorted by key and its equal-key runs combined with a linear scan. The
/// output reproduces the hash-based reference exactly: buckets in machine
/// order, and within a bucket the merged keys in order of first appearance,
/// each folded in arrival order.
fn route_and_merge_partials<A>(
    ctx: &mut MpcContext,
    num_machines: usize,
    words_per_tuple: usize,
    combined: Vec<Vec<(u64, A)>>,
    mut combine: impl FnMut(&mut A, A),
    scratch: &mut ShuffleScratch,
) -> Result<Vec<(u64, A)>, MpcError> {
    let total: usize = combined.iter().map(Vec::len).sum();
    // Bytes reflect the actual partial-accumulator representation; the
    // hash-based spec below charges identically, keeping the differential
    // contract (`stats equal`) intact.
    ctx.charge_shuffle_with_bytes(
        total * words_per_tuple,
        total * std::mem::size_of::<(u64, A)>(),
    );
    let m = num_machines.max(1);

    // Counting pass: destination of every partial (cached — the scatter
    // below does not re-hash) and per-destination counts.
    let counts = &mut scratch.histograms;
    counts.clear();
    counts.resize(m, 0);
    scratch.dests.clear();
    scratch.dests.reserve(total);
    for machine in &combined {
        for (k, _) in machine {
            let dest = (splitmix64(*k) % m as u64) as usize;
            scratch.dests.push(dest);
            counts[dest] += 1;
        }
    }
    let offsets = &mut scratch.cursors;
    offsets.clear();
    offsets.push(0);
    let mut acc = 0usize;
    for &c in counts.iter() {
        acc += c;
        offsets.push(acc);
    }

    let budget = ctx.config().memory_per_machine;
    let mut loads = WorkerStats::new();
    for (d, &c) in counts.iter().enumerate() {
        loads.record_machine_load(d, c * words_per_tuple, budget);
    }
    ctx.absorb_workers([loads])?;

    // Scatter pass: stable counting sort by destination, reusing `counts`
    // as the running write cursors. `Option` wrapping lets the merge below
    // move accumulators out in radix order.
    counts.copy_from_slice(&offsets[..m]);
    let mut routed: Vec<Option<(u64, A)>> = Vec::with_capacity(total);
    routed.resize_with(total, || None);
    let mut idx = 0usize;
    for machine in combined {
        for (k, a) in machine {
            let dest = scratch.dests[idx];
            idx += 1;
            routed[counts[dest]] = Some((k, a));
            counts[dest] += 1;
        }
    }

    // Merge pass, bucket by bucket: argsort the bucket's keys, combine each
    // equal-key run in arrival order (the stable sort keeps it), then emit
    // the runs ordered by first appearance — exactly the reference order.
    if scratch.radix.is_empty() {
        scratch.radix.push(Default::default());
    }
    let mut radix = scratch.radix[0].lock().expect("radix scratch lock");
    let mut out: Vec<(u64, A)> = Vec::new();
    let mut merged: Vec<(usize, (u64, A))> = Vec::new();
    for d in 0..m {
        let (lo, hi) = (offsets[d], offsets[d + 1]);
        let len = hi - lo;
        radix.argsort_by(len, |i| routed[lo + i].as_ref().expect("routed slot").0);
        merged.clear();
        let mut pos = 0usize;
        while pos < len {
            let k = radix.sorted_key(pos);
            let first = radix.order()[pos];
            let (_, seed) = routed[lo + first].take().expect("first of run");
            let mut acc = seed;
            pos += 1;
            while pos < len && radix.sorted_key(pos) == k {
                let (_, a) = routed[lo + radix.order()[pos]].take().expect("run member");
                combine(&mut acc, a);
                pos += 1;
            }
            merged.push((first, (k, acc)));
        }
        merged.sort_unstable_by_key(|&(first, _)| first);
        out.extend(merged.drain(..).map(|(_, pair)| pair));
    }
    Ok(out)
}

/// The hash-based communication half retained for
/// [`Cluster::reduce_by_key_hashmap`].
fn route_and_merge_partials_hashmap<A>(
    ctx: &mut MpcContext,
    num_machines: usize,
    words_per_tuple: usize,
    combined: Vec<Vec<(u64, A)>>,
    mut combine: impl FnMut(&mut A, A),
) -> Result<Vec<(u64, A)>, MpcError> {
    use std::collections::HashMap;
    let total: usize = combined.iter().map(Vec::len).sum();
    ctx.charge_shuffle_with_bytes(
        total * words_per_tuple,
        total * std::mem::size_of::<(u64, A)>(),
    );
    let m = num_machines.max(1);
    let mut partials: Vec<Vec<(u64, A)>> = (0..m).map(|_| Vec::new()).collect();
    for machine in combined {
        for (k, a) in machine {
            let dest = (splitmix64(k) % m as u64) as usize;
            partials[dest].push((k, a));
        }
    }
    let budget = ctx.config().memory_per_machine;
    let mut loads = WorkerStats::new();
    for (i, bucket) in partials.iter().enumerate() {
        loads.record_machine_load(i, bucket.len() * words_per_tuple, budget);
    }
    ctx.absorb_workers([loads])?;
    let mut out = Vec::new();
    for bucket in partials {
        // First-seen order (deterministic) with O(1) expected lookups: the
        // HashMap only indexes into the order-preserving Vec, so its
        // iteration order never leaks into the output.
        let mut index: HashMap<u64, usize> = HashMap::new();
        let mut merged: Vec<(u64, A)> = Vec::new();
        for (k, a) in bucket {
            match index.entry(k) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    combine(&mut merged[*e.get()].1, a)
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(merged.len());
                    merged.push((k, a));
                }
            }
        }
        out.extend(merged);
    }
    Ok(out)
}

/// One machine's sort-based combiner pass: caches the tuples' keys, stably
/// radix-argsorts them, and folds each equal-key run (in arrival order) with
/// one linear scan. Returns the per-key accumulators key-sorted — the same
/// output, bit for bit, as [`combine_machine_hashmap`].
fn combine_machine_radix<T, A, K, I, FO>(
    tuples: &[T],
    key: &K,
    init: &I,
    fold: &FO,
    radix: &mut RadixScratch,
) -> Vec<(u64, A)>
where
    K: Fn(&T) -> u64,
    I: Fn(u64) -> A,
    FO: Fn(&mut A, &T),
{
    let n = tuples.len();
    radix.argsort_by(n, |i| key(&tuples[i]));
    let mut out: Vec<(u64, A)> = Vec::new();
    let mut pos = 0usize;
    while pos < n {
        let k = radix.sorted_key(pos);
        let mut acc = init(k);
        while pos < n && radix.sorted_key(pos) == k {
            fold(&mut acc, &tuples[radix.order()[pos]]);
            pos += 1;
        }
        out.push((k, acc));
    }
    out
}

/// Consuming counterpart of [`combine_machine_radix`]: the machine's tuples
/// arrive in `buf` (drained from the arena, reused across the worker's
/// machines), are permuted into key order in place, and handed to `fold` by
/// value run by run.
fn combine_machine_radix_owned<T, A, K, I, FO>(
    buf: &mut Vec<T>,
    key: &K,
    init: &I,
    fold: &FO,
    radix: &mut RadixScratch,
) -> Vec<(u64, A)>
where
    K: Fn(&T) -> u64,
    I: Fn(u64) -> A,
    FO: Fn(&mut A, T),
{
    let n = buf.len();
    radix.argsort_by(n, |i| key(&buf[i]));
    radix.apply_order_to(buf);
    let mut out: Vec<(u64, A)> = Vec::new();
    let mut current: Option<(u64, A)> = None;
    for (j, t) in buf.drain(..).enumerate() {
        let k = radix.sorted_key(j);
        match current.as_mut() {
            Some((ck, acc)) if *ck == k => fold(acc, t),
            _ => {
                if let Some(done) = current.take() {
                    out.push(done);
                }
                let mut acc = init(k);
                fold(&mut acc, t);
                current = Some((k, acc));
            }
        }
    }
    if let Some(done) = current.take() {
        out.push(done);
    }
    out
}

/// One machine's hash-based combiner pass (the retained reference): folds
/// its tuples into per-key accumulators and returns them key-sorted (sorting
/// removes the HashMap's iteration-order nondeterminism from the output).
fn combine_machine_hashmap<T, A, K, I>(
    tuples: impl Iterator<Item = T>,
    key: &K,
    init: &I,
    mut fold: impl FnMut(&mut A, T),
) -> Vec<(u64, A)>
where
    K: Fn(&T) -> u64,
    I: Fn(u64) -> A,
{
    use std::collections::HashMap;
    let mut local: HashMap<u64, A> = HashMap::new();
    for t in tuples {
        let k = key(&t);
        let acc = local.entry(k).or_insert_with(|| init(k));
        fold(acc, t);
    }
    let mut pairs: Vec<(u64, A)> = local.into_iter().collect();
    pairs.sort_unstable_by_key(|&(k, _)| k);
    pairs
}

impl<T: Clone> Cluster<T> {
    /// Broadcasts a small value to every machine. Charges one round and
    /// `machines × words` traffic; errors if the broadcast value alone
    /// exceeds the per-machine budget.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::MemoryExceeded`] if `words` exceeds the budget.
    pub fn broadcast_check(&self, ctx: &mut MpcContext, words: usize) -> Result<(), MpcError> {
        ctx.charge_shuffle(words * self.num_machines());
        ctx.record_machine_load(0, words)
    }
}

/// The output of [`Cluster::counting_shuffle_plan`]: everything the scatter
/// pass needs that does not already live in the reused
/// [`ShuffleScratch`] (per-tuple destinations and the worker-major cursor
/// table stay there).
struct ShufflePlan {
    /// Contiguous per-worker arena ranges (machine-aligned), matching the
    /// scratch cursor rows index-for-index.
    ranges: Vec<Range<usize>>,
    /// Output machine-offset table (owned: it becomes the result cluster's
    /// offset table).
    dest_offsets: Vec<usize>,
}

/// Stitches per-machine output vectors into one arena + offset table.
fn from_machine_parts<U>(
    parts: Vec<Vec<U>>,
    words_per_tuple: usize,
    executor: Executor,
) -> Cluster<U> {
    let mut offsets = Vec::with_capacity(parts.len() + 1);
    offsets.push(0usize);
    for p in &parts {
        offsets.push(offsets.last().unwrap() + p.len());
    }
    let mut arena = Vec::with_capacity(*offsets.last().unwrap());
    for p in parts {
        arena.extend(p);
    }
    Cluster {
        arena,
        offsets,
        words_per_tuple,
        executor,
    }
}

/// A cheap 64-bit mixer (SplitMix64 finaliser) used to map keys to machines.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;

    fn small_config() -> MpcConfig {
        MpcConfig {
            memory_per_machine: 64,
            num_machines: 8,
            delta: 0.5,
            strict_memory: true,
            threads: 1,
        }
    }

    #[test]
    fn tuples_distribute_evenly() {
        let cfg = small_config();
        let cluster = Cluster::from_tuples(&cfg, (0u64..80).map(|i| (i, i)).collect());
        assert_eq!(cluster.num_machines(), 8);
        assert_eq!(cluster.len(), 80);
        for i in 0..8 {
            assert_eq!(cluster.machine(i).len(), 10);
        }
        assert_eq!(cluster.max_load_words(), 20);
    }

    #[test]
    fn round_robin_layout_matches_historical_order() {
        // Machine j must hold tuples j, j + m, j + 2m, … in increasing order
        // (the order the Vec<Vec<T>> layout produced).
        let cfg = small_config();
        let cluster = Cluster::from_tuples(&cfg, (0u64..30).map(|i| (i, ())).collect());
        for j in 0..8usize {
            let expected: Vec<u64> = (j as u64..30).step_by(8).collect();
            let got: Vec<u64> = cluster.machine(j).iter().map(|t| t.0).collect();
            assert_eq!(got, expected, "machine {j}");
        }
    }

    #[test]
    fn shuffle_colocates_equal_keys_and_charges_one_round() {
        let cfg = small_config();
        let mut ctx = MpcContext::new(cfg);
        let tuples: Vec<(u64, u64)> = (0..100).map(|i| (i % 10, i)).collect();
        let cluster = Cluster::from_tuples(&cfg, tuples);
        let shuffled = cluster.shuffle_by_key(&mut ctx, |t| t.0).unwrap();
        assert_eq!(ctx.stats().total_rounds(), 1);
        assert_eq!(shuffled.len(), 100);
        // Each key must live on exactly one machine.
        for key in 0..10u64 {
            let machines_with_key: usize = (0..shuffled.num_machines())
                .filter(|&m| shuffled.machine(m).iter().any(|t| t.0 == key))
                .count();
            assert_eq!(machines_with_key, 1, "key {key} split across machines");
        }
    }

    #[test]
    fn shuffle_is_bit_identical_across_backends() {
        let tuples: Vec<(u64, u64)> = (0..500).map(|i| (i % 37, i)).collect();
        let mut outputs = Vec::new();
        let mut stats = Vec::new();
        for threads in [1usize, 2, 8] {
            let cfg = MpcConfig::with_memory(2048, 512).with_threads(threads);
            let mut ctx = MpcContext::new(cfg);
            let cluster = Cluster::from_tuples(&cfg, tuples.clone());
            let shuffled = cluster.shuffle_by_key(&mut ctx, |t| t.0).unwrap();
            let machines: Vec<Vec<(u64, u64)>> = (0..shuffled.num_machines())
                .map(|m| shuffled.machine(m).to_vec())
                .collect();
            outputs.push(machines);
            stats.push(ctx.into_stats());
        }
        assert_eq!(
            outputs[0], outputs[1],
            "threaded(2) diverged from sequential"
        );
        assert_eq!(
            outputs[0], outputs[2],
            "threaded(8) diverged from sequential"
        );
        assert_eq!(stats[0], stats[1]);
        assert_eq!(stats[0], stats[2]);
    }

    #[test]
    fn owned_shuffle_matches_borrowing_shuffle_exactly() {
        let tuples: Vec<(u64, u64)> = (0..700).map(|i| (i % 41, i)).collect();
        for threads in [1usize, 4] {
            let cfg = MpcConfig::with_memory(4096, 512).with_threads(threads);
            let mut ctx_a = MpcContext::new(cfg);
            let mut ctx_b = MpcContext::new(cfg);
            let a = Cluster::from_tuples(&cfg, tuples.clone())
                .shuffle_by_key(&mut ctx_a, |t| t.0)
                .unwrap();
            let b = Cluster::from_tuples(&cfg, tuples.clone())
                .shuffle_by_key_owned(&mut ctx_b, |t| t.0)
                .unwrap();
            assert_eq!(a.offsets(), b.offsets());
            assert_eq!(a.gather(), b.gather());
            assert_eq!(ctx_a.into_stats(), ctx_b.into_stats());
        }
    }

    #[test]
    fn owned_shuffle_works_without_clone() {
        // String is Clone, but this exercises the move path with owned heap
        // data; a type without Clone would compile just the same.
        let cfg = small_config();
        let mut ctx = MpcContext::new(cfg.permissive());
        let tuples: Vec<(u64, String)> = (0..40).map(|i| (i % 5, format!("p{i}"))).collect();
        let cluster = Cluster::from_tuples(&cfg.permissive(), tuples);
        let shuffled = cluster.shuffle_by_key_owned(&mut ctx, |t| t.0).unwrap();
        assert_eq!(shuffled.len(), 40);
        for key in 0..5u64 {
            let machines_with_key: usize = (0..shuffled.num_machines())
                .filter(|&m| shuffled.machine(m).iter().any(|t| t.0 == key))
                .count();
            assert_eq!(machines_with_key, 1);
        }
    }

    #[test]
    fn shuffle_detects_memory_overflow_on_skewed_keys() {
        // All tuples share one key, so one machine must hold everything.
        let cfg = MpcConfig {
            memory_per_machine: 32,
            num_machines: 4,
            delta: 0.5,
            strict_memory: true,
            threads: 1,
        };
        let mut ctx = MpcContext::new(cfg);
        let tuples: Vec<(u64, u64)> = (0..100).map(|i| (7, i)).collect();
        let cluster = Cluster::from_tuples(&cfg, tuples);
        let err = cluster.shuffle_by_key(&mut ctx, |t| t.0).unwrap_err();
        assert!(matches!(err, MpcError::MemoryExceeded { .. }));
        // The threaded backend reports the same overflow.
        let cfg4 = cfg.with_threads(4);
        let mut ctx4 = MpcContext::new(cfg4);
        let cluster4 = Cluster::from_tuples(&cfg4, (0..100u64).map(|i| (7u64, i)).collect());
        let err4 = cluster4.shuffle_by_key(&mut ctx4, |t| t.0).unwrap_err();
        assert_eq!(err, err4);
        // The owned variant errors identically.
        let mut ctx5 = MpcContext::new(cfg);
        let cluster5 = Cluster::from_tuples(&cfg, (0..100u64).map(|i| (7u64, i)).collect());
        let err5 = cluster5
            .shuffle_by_key_owned(&mut ctx5, |t| t.0)
            .unwrap_err();
        assert_eq!(err, err5);
        // Permissive mode records the violation instead.
        let loose = cfg.permissive();
        let mut ctx2 = MpcContext::new(loose);
        let cluster2 = Cluster::from_tuples(&loose, (0..100u64).map(|i| (7u64, i)).collect());
        assert!(cluster2.shuffle_by_key(&mut ctx2, |t| t.0).is_ok());
        assert!(ctx2.stats().memory_violations() > 0);
    }

    #[test]
    fn map_and_filter_are_free() {
        let cfg = small_config();
        let ctx = MpcContext::new(cfg);
        let cluster = Cluster::from_tuples(&cfg, (0u64..50).map(|i| (i, i)).collect());
        let doubled = cluster.map_local(|t| (t.0, t.1 * 2));
        let even = doubled.filter_local(|t| t.1 % 4 == 0);
        assert_eq!(ctx.stats().total_rounds(), 0);
        assert_eq!(doubled.len(), 50);
        assert_eq!(even.len(), 25);
    }

    #[test]
    fn local_ops_match_across_backends() {
        let cfg = small_config();
        let tuples: Vec<(u64, u64)> = (0..200).map(|i| (i % 13, i)).collect();
        let seq = Cluster::from_tuples(&cfg, tuples.clone());
        let par = Cluster::from_tuples(&cfg.with_threads(4), tuples);
        let a = seq
            .map_local(|t| (t.0, t.1 + 1))
            .flat_map_local(|t| vec![*t, (t.0, t.1 * 2)])
            .filter_local(|t| t.1 % 3 != 0)
            .gather();
        let b = par
            .map_local(|t| (t.0, t.1 + 1))
            .flat_map_local(|t| vec![*t, (t.0, t.1 * 2)])
            .filter_local(|t| t.1 % 3 != 0)
            .gather();
        assert_eq!(a, b);
    }

    #[test]
    fn owned_and_in_place_locals_match_borrowing_locals() {
        let tuples: Vec<(u64, u64)> = (0..300).map(|i| (i % 17, i)).collect();
        for threads in [1usize, 4] {
            let cfg = small_config().with_threads(threads);
            let reference = Cluster::from_tuples(&cfg, tuples.clone())
                .map_local(|t| (t.0, t.1 + 7))
                .flat_map_local(|t| vec![*t, (t.0, t.1 * 3)])
                .filter_local(|t| t.1 % 2 == 0);
            // Same chain through the consuming / in-place variants.
            let mut owned = Cluster::from_tuples(&cfg, tuples.clone())
                .map_local_owned(|t| (t.0, t.1 + 7))
                .flat_map_local_owned(|t| vec![t, (t.0, t.1 * 3)]);
            owned.filter_local_in_place(|t| t.1 % 2 == 0);
            assert_eq!(reference.offsets(), owned.offsets(), "threads={threads}");
            assert_eq!(reference.gather(), owned.gather(), "threads={threads}");
        }
    }

    #[test]
    fn map_local_in_place_updates_every_tuple() {
        let cfg = small_config().with_threads(4);
        let mut cluster = Cluster::from_tuples(&cfg, (0u64..500).map(|i| (i, i)).collect());
        let offsets_before = cluster.offsets().to_vec();
        cluster.map_local_in_place(|t| t.1 *= 2);
        assert_eq!(cluster.offsets(), &offsets_before[..]);
        for m in 0..cluster.num_machines() {
            for t in cluster.machine(m) {
                assert_eq!(t.1, t.0 * 2);
            }
        }
    }

    #[test]
    fn filter_local_in_place_keeps_machine_boundaries_consistent() {
        let cfg = small_config();
        let mut cluster = Cluster::from_tuples(&cfg, (0u64..100).map(|i| (i, i)).collect());
        let expected = cluster.filter_local(|t| t.1 % 3 == 0);
        cluster.filter_local_in_place(|t| t.1 % 3 == 0);
        assert_eq!(cluster.offsets(), expected.offsets());
        assert_eq!(cluster.gather(), expected.gather());
    }

    #[test]
    fn flat_map_can_expand_tuples() {
        let cfg = small_config();
        let cluster = Cluster::from_tuples(&cfg, vec![(1u64, 1u64), (2, 2)]);
        let expanded = cluster.flat_map_local(|t| vec![(t.0, t.1), (t.0, t.1 + 10)]);
        assert_eq!(expanded.len(), 4);
    }

    #[test]
    fn reduce_by_key_counts_correctly() {
        let cfg = small_config();
        let mut ctx = MpcContext::new(cfg);
        let tuples: Vec<(u64, u64)> = (0..90).map(|i| (i % 3, 1)).collect();
        let cluster = Cluster::from_tuples(&cfg, tuples);
        let mut counts = cluster
            .reduce_by_key(
                &mut ctx,
                |t| t.0,
                |_| 0u64,
                |acc, t| *acc += t.1,
                |acc, b| *acc += b,
            )
            .unwrap();
        counts.sort_unstable();
        assert_eq!(counts, vec![(0, 30), (1, 30), (2, 30)]);
        assert_eq!(ctx.stats().total_rounds(), 1);
    }

    #[test]
    fn reduce_by_key_matches_across_backends_without_sorting() {
        let tuples: Vec<(u64, u64)> = (0..400).map(|i| (i % 23, 1)).collect();
        let mut results = Vec::new();
        for threads in [1usize, 4] {
            let cfg = MpcConfig::with_memory(2048, 512).with_threads(threads);
            let mut ctx = MpcContext::new(cfg);
            let cluster = Cluster::from_tuples(&cfg, tuples.clone());
            let counts = cluster
                .reduce_by_key(
                    &mut ctx,
                    |t| t.0,
                    |_| 0u64,
                    |acc, t| *acc += t.1,
                    |acc, b| *acc += b,
                )
                .unwrap();
            results.push(counts);
        }
        // Not merely the same multiset: the *order* must match too.
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn owned_reduce_matches_borrowing_reduce_exactly() {
        let tuples: Vec<(u64, u64)> = (0..400).map(|i| (i % 19, i)).collect();
        for threads in [1usize, 4] {
            let cfg = MpcConfig::with_memory(4096, 512).with_threads(threads);
            let mut ctx_a = MpcContext::new(cfg);
            let mut ctx_b = MpcContext::new(cfg);
            let a = Cluster::from_tuples(&cfg, tuples.clone())
                .reduce_by_key(
                    &mut ctx_a,
                    |t| t.0,
                    |_| 0u64,
                    |acc, t| *acc += t.1,
                    |acc, b| *acc += b,
                )
                .unwrap();
            let b = Cluster::from_tuples(&cfg, tuples.clone())
                .reduce_by_key_owned(
                    &mut ctx_b,
                    |t| t.0,
                    |_| 0u64,
                    |acc, t: (u64, u64)| *acc += t.1,
                    |acc, b| *acc += b,
                )
                .unwrap();
            assert_eq!(a, b, "threads={threads}");
            assert_eq!(ctx_a.into_stats(), ctx_b.into_stats());
        }
    }

    #[test]
    fn radix_reduce_matches_hashmap_reference_exactly() {
        // The sort-based aggregation must reproduce the retained hash-based
        // reference bit for bit: same pairs, same order, same stats — on
        // skewed, uniform and single-key workloads, at 1 and 4 threads.
        let workloads: Vec<Vec<(u64, u64)>> = vec![
            (0..1000).map(|i| (i % 37, i)).collect(),
            (0..1000).map(|i| (i * i % 1000, i)).collect(),
            (0..500).map(|_| (42, 1)).collect(),
            Vec::new(),
            // Keys spanning high bytes exercise the later radix passes.
            (0..800).map(|i| ((i % 13) << 48 | (i % 7), i)).collect(),
        ];
        for tuples in workloads {
            for threads in [1usize, 4] {
                let cfg = MpcConfig::with_memory(1 << 14, 512).with_threads(threads);
                let mut ctx_radix = MpcContext::new(cfg);
                let mut ctx_hash = MpcContext::new(cfg);
                let radix = Cluster::from_tuples(&cfg, tuples.clone())
                    .reduce_by_key(
                        &mut ctx_radix,
                        |t| t.0,
                        |k| k,
                        |acc, t| *acc = acc.wrapping_add(t.1),
                        |acc, b| *acc = acc.wrapping_mul(31).wrapping_add(b),
                    )
                    .unwrap();
                let hash = Cluster::from_tuples(&cfg, tuples.clone())
                    .reduce_by_key_hashmap(
                        &mut ctx_hash,
                        |t| t.0,
                        |k| k,
                        |acc, t| *acc = acc.wrapping_add(t.1),
                        |acc, b| *acc = acc.wrapping_mul(31).wrapping_add(b),
                    )
                    .unwrap();
                assert_eq!(radix, hash, "threads={threads}");
                assert_eq!(ctx_radix.into_stats(), ctx_hash.into_stats());
            }
        }
    }

    #[test]
    fn scratch_reuse_across_shuffles_changes_nothing() {
        // Run several shuffles and reductions back-to-back on ONE context
        // (scratch reused) and compare each against a fresh-context run
        // (scratch cold): outputs and per-call stats must be identical.
        let cfg = MpcConfig::with_memory(1 << 14, 256)
            .permissive()
            .with_threads(4);
        let mut warm = MpcContext::new(cfg);
        for round in 0..4u64 {
            let tuples: Vec<(u64, u64)> = (0..1500)
                .map(|i| ((i * (round + 3)) % (11 + 60 * round), i))
                .collect();
            let mut cold = MpcContext::new(cfg);
            let warm_before = warm.stats().clone();
            let a = Cluster::from_tuples(&cfg, tuples.clone())
                .shuffle_by_key(&mut warm, |t| t.0)
                .unwrap();
            let b = Cluster::from_tuples(&cfg, tuples.clone())
                .shuffle_by_key(&mut cold, |t| t.0)
                .unwrap();
            assert_eq!(a.offsets(), b.offsets(), "round {round}");
            assert_eq!(a.gather(), b.gather(), "round {round}");
            let mut cold2 = MpcContext::new(cfg);
            let ra = Cluster::from_tuples(&cfg, tuples.clone())
                .reduce_by_key(
                    &mut warm,
                    |t| t.0,
                    |_| 0u64,
                    |a, t| *a += t.1,
                    |a, b| *a += b,
                )
                .unwrap();
            let rb = Cluster::from_tuples(&cfg, tuples)
                .reduce_by_key(
                    &mut cold2,
                    |t| t.0,
                    |_| 0u64,
                    |a, t| *a += t.1,
                    |a, b| *a += b,
                )
                .unwrap();
            assert_eq!(ra, rb, "round {round}");
            // The warm context charged exactly what the two cold ones did.
            let warm_after = warm.stats();
            assert_eq!(
                warm_after.total_rounds() - warm_before.total_rounds(),
                cold.stats().total_rounds() + cold2.stats().total_rounds()
            );
        }
    }

    #[test]
    fn reduce_by_key_with_skew_stays_within_budget_via_combiners() {
        // 1000 tuples all with the same key but spread over machines: the
        // combiner collapses them to one partial per machine, so no overflow.
        let cfg = MpcConfig {
            memory_per_machine: 64,
            num_machines: 16,
            delta: 0.5,
            strict_memory: true,
            threads: 1,
        };
        let mut ctx = MpcContext::new(cfg);
        let cluster = Cluster::from_tuples(&cfg, (0..1000u64).map(|_| (5u64, 1u64)).collect());
        let counts = cluster
            .reduce_by_key(
                &mut ctx,
                |t| t.0,
                |_| 0u64,
                |acc, t| *acc += t.1,
                |acc, b| *acc += b,
            )
            .unwrap();
        assert_eq!(counts, vec![(5, 1000)]);
    }

    #[test]
    fn broadcast_too_large_fails() {
        let cfg = small_config();
        let mut ctx = MpcContext::new(cfg);
        let cluster = Cluster::from_tuples(&cfg, vec![(0u64, 0u64)]);
        assert!(cluster.broadcast_check(&mut ctx, 10).is_ok());
        assert!(cluster.broadcast_check(&mut ctx, 1000).is_err());
    }

    #[test]
    fn keyed_tuple_trait_for_pairs() {
        let t = (42u64, "payload");
        assert_eq!(t.key(), 42);
    }

    #[test]
    fn gather_returns_everything() {
        let cfg = small_config();
        let cluster = Cluster::from_tuples(&cfg, (0u64..33).map(|i| (i, ())).collect());
        let mut all: Vec<u64> = cluster.gather().into_iter().map(|t| t.0).collect();
        all.sort_unstable();
        assert_eq!(all, (0..33u64).collect::<Vec<_>>());
    }

    #[test]
    fn from_arena_round_trips_through_partitions() {
        let a = Cluster::from_partitions(vec![vec![1u64, 2], vec![], vec![3]]);
        let b = Cluster::from_arena(vec![1u64, 2, 3], vec![0, 2, 2, 3]);
        assert_eq!(a.num_machines(), b.num_machines());
        for m in 0..3 {
            assert_eq!(a.machine(m), b.machine(m));
        }
        assert_eq!(a.offsets(), b.offsets());
    }

    #[test]
    #[should_panic(expected = "offsets must start at 0")]
    fn from_arena_rejects_bad_offsets() {
        let _ = Cluster::from_arena(vec![1u64, 2, 3], vec![0, 2]);
    }

    #[test]
    fn empty_cluster_shuffles_to_empty() {
        let cfg = small_config();
        let mut ctx = MpcContext::new(cfg);
        let cluster = Cluster::from_tuples(&cfg, Vec::<(u64, u64)>::new());
        let shuffled = cluster.shuffle_by_key(&mut ctx, |t| t.0).unwrap();
        assert!(shuffled.is_empty());
        assert_eq!(shuffled.num_machines(), 8);
        assert_eq!(ctx.stats().total_rounds(), 1);
    }
}
