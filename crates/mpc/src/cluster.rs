//! The execution layer: simulated machines holding tuples, with
//! map / shuffle / broadcast supersteps that enforce the memory budget.
//!
//! The [`Cluster`] is deliberately simple — a vector of machines, each a
//! vector of tuples — because its job is not performance but *fidelity*: a
//! shuffle really re-partitions tuples by key, really costs one round, and
//! really fails (or records a violation) when some machine would exceed its
//! memory budget. The baselines run end-to-end on this layer, and the unit
//! tests of the primitives in [`crate::primitives`] validate the round
//! accounting the higher-level algorithms charge through
//! [`MpcContext`](crate::MpcContext).
//!
//! Per-machine work (local maps, shuffle routing, combiner passes, load
//! checks) fans out through the cluster's [`Executor`]: with the threaded
//! backend the simulated machines really do compute concurrently, while the
//! results — tuple order, statistics, errors — stay bit-identical to the
//! sequential backend (see the determinism contract in [`crate::executor`]).

use crate::config::{MpcConfig, MpcError};
use crate::executor::Executor;
use crate::stats::{MpcContext, WorkerStats};

/// Tuples that carry an intrinsic shuffle key.
///
/// Implemented for `(u64, V)` pairs, the workhorse format of every algorithm
/// in this workspace (key = the vertex or component the tuple is routed to).
pub trait KeyedTuple {
    /// The key the tuple is routed by during a shuffle.
    fn key(&self) -> u64;
}

impl<V> KeyedTuple for (u64, V) {
    fn key(&self) -> u64 {
        self.0
    }
}

/// A set of tuples partitioned across simulated machines.
#[derive(Debug, Clone)]
pub struct Cluster<T> {
    machines: Vec<Vec<T>>,
    /// Words per tuple used for memory accounting (default 2: a key and a
    /// value word).
    words_per_tuple: usize,
    /// Backend driving per-machine work; inherited by derived clusters.
    executor: Executor,
}

impl<T> Cluster<T> {
    /// Distributes `tuples` round-robin across `config.num_machines` machines
    /// (the paper assumes the input is distributed adversarially but evenly;
    /// round-robin is the even distribution with no helpful locality). The
    /// cluster adopts the execution backend selected by `config.threads`.
    pub fn from_tuples(config: &MpcConfig, tuples: Vec<T>) -> Self {
        let m = config.num_machines.max(1);
        let mut machines: Vec<Vec<T>> = (0..m).map(|_| Vec::new()).collect();
        for (i, t) in tuples.into_iter().enumerate() {
            machines[i % m].push(t);
        }
        Cluster {
            machines,
            words_per_tuple: 2,
            executor: config.executor(),
        }
    }

    /// Overrides the number of words each tuple is charged for.
    pub fn with_words_per_tuple(mut self, words: usize) -> Self {
        self.words_per_tuple = words.max(1);
        self
    }

    /// Builds a cluster directly from explicit per-machine partitions.
    /// Used by the primitives in [`crate::primitives`]; not itself an MPC
    /// operation (no rounds are charged). Runs on the sequential backend
    /// unless [`Cluster::with_executor`] is applied.
    pub fn from_partitions(machines: Vec<Vec<T>>) -> Self {
        Cluster {
            machines,
            words_per_tuple: 2,
            executor: Executor::sequential(),
        }
    }

    /// Overrides the execution backend driving per-machine work.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// The execution backend this cluster's supersteps run on.
    pub fn executor(&self) -> Executor {
        self.executor
    }

    /// Number of simulated machines.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// Total number of tuples across all machines.
    pub fn len(&self) -> usize {
        self.machines.iter().map(Vec::len).sum()
    }

    /// Returns `true` if the cluster holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.machines.iter().all(Vec::is_empty)
    }

    /// The tuples currently resident on machine `i`.
    pub fn machine(&self, i: usize) -> &[T] {
        &self.machines[i]
    }

    /// The largest per-machine load, in words.
    pub fn max_load_words(&self) -> usize {
        self.machines
            .iter()
            .map(|m| m.len() * self.words_per_tuple)
            .max()
            .unwrap_or(0)
    }

    /// Collects all tuples into one vector (an *inspection* helper for tests
    /// and drivers — not an MPC operation, hence no context argument).
    pub fn gather(self) -> Vec<T> {
        self.machines.into_iter().flatten().collect()
    }

    /// Applies `f` to every tuple locally, one simulated machine per work
    /// unit. Local computation is free in the MPC model, so no rounds are
    /// charged.
    pub fn map_local<U, F>(&self, f: F) -> Cluster<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        Cluster {
            machines: self
                .executor
                .map_items(&self.machines, |_, m| m.iter().map(&f).collect()),
            words_per_tuple: self.words_per_tuple,
            executor: self.executor,
        }
    }

    /// Applies `f` to every tuple locally, producing zero or more outputs per
    /// input. Free, like [`Cluster::map_local`].
    pub fn flat_map_local<U, I, F>(&self, f: F) -> Cluster<U>
    where
        T: Sync,
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(&T) -> I + Sync,
    {
        Cluster {
            machines: self
                .executor
                .map_items(&self.machines, |_, m| m.iter().flat_map(&f).collect()),
            words_per_tuple: self.words_per_tuple,
            executor: self.executor,
        }
    }

    /// Drops tuples not satisfying `keep`. Free (local).
    pub fn filter_local<F>(&self, keep: F) -> Cluster<T>
    where
        T: Clone + Send + Sync,
        F: Fn(&T) -> bool + Sync,
    {
        Cluster {
            machines: self.executor.map_items(&self.machines, |_, m| {
                m.iter().filter(|t| keep(t)).cloned().collect()
            }),
            words_per_tuple: self.words_per_tuple,
            executor: self.executor,
        }
    }
}

impl<T: Clone> Cluster<T> {
    /// One communication superstep: re-partitions every tuple to machine
    /// `hash(key) % num_machines`, so that all tuples sharing a key land on
    /// the same machine. Charges exactly one round and `len()` tuples of
    /// traffic, and enforces the per-machine memory budget on the result.
    ///
    /// Source machines route concurrently (each worker producing its own
    /// bucket set, merged in machine order) and destination loads are checked
    /// through per-worker [`WorkerStats`], so the result — including which
    /// machine a strict-mode overflow reports — is identical on every
    /// backend.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::MemoryExceeded`] in strict mode if any destination
    /// machine would exceed its budget.
    pub fn shuffle_by_key<F>(&self, ctx: &mut MpcContext, key: F) -> Result<Cluster<T>, MpcError>
    where
        T: Send + Sync,
        F: Fn(&T) -> u64 + Sync,
    {
        let m = self.machines.len().max(1);
        // Route phase: each worker covers a contiguous range of source
        // machines and fills its own bucket set.
        let routed: Vec<Vec<Vec<T>>> = self.executor.map_ranges(self.machines.len(), |range| {
            let mut buckets: Vec<Vec<T>> = (0..m).map(|_| Vec::new()).collect();
            for machine in &self.machines[range] {
                for t in machine {
                    let dest = (splitmix64(key(t)) % m as u64) as usize;
                    buckets[dest].push(t.clone());
                }
            }
            buckets
        });
        // Fan-in in worker order reproduces the sequential tuple order.
        let mut out: Vec<Vec<T>> = (0..m).map(|_| Vec::new()).collect();
        for buckets in routed {
            for (dest, mut bucket) in buckets.into_iter().enumerate() {
                out[dest].append(&mut bucket);
            }
        }
        ctx.charge_shuffle(self.len() * self.words_per_tuple);
        let result = Cluster {
            machines: out,
            words_per_tuple: self.words_per_tuple,
            executor: self.executor,
        };
        // Load accounting is O(machines) additions — not worth a fan-out.
        let budget = ctx.config().memory_per_machine;
        let mut loads = WorkerStats::new();
        for (i, machine) in result.machines.iter().enumerate() {
            loads.record_machine_load(i, machine.len() * self.words_per_tuple, budget);
        }
        ctx.absorb_workers([loads])?;
        Ok(result)
    }

    /// Shuffle followed by a per-key reduction: tuples with equal keys are
    /// folded with `fold` starting from `init(key)`, and partial accumulators
    /// from different machines are merged with `combine`.
    ///
    /// To stay within machine memory even when one key is very frequent, a
    /// *combiner* pass pre-aggregates locally before the shuffle (the
    /// standard MapReduce optimisation); the shuffle therefore moves at most
    /// one partial accumulator per (machine, key) pair. Charges one round.
    ///
    /// The combiner pass runs one simulated machine per work unit; partials
    /// are emitted key-sorted per machine, so the returned pairs are in a
    /// deterministic order (grouped by destination machine, first-seen order
    /// within each group) on every backend — and, unlike the historical
    /// implementation, run-to-run.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::MemoryExceeded`] in strict mode if a destination
    /// machine would exceed its budget.
    pub fn reduce_by_key<A, K, I, FO>(
        &self,
        ctx: &mut MpcContext,
        key: K,
        init: I,
        fold: FO,
        mut combine: impl FnMut(&mut A, A),
    ) -> Result<Vec<(u64, A)>, MpcError>
    where
        T: Sync,
        A: Clone + Send,
        K: Fn(&T) -> u64 + Sync,
        I: Fn(u64) -> A + Sync,
        FO: Fn(&mut A, &T) + Sync,
    {
        use std::collections::HashMap;
        // Local combiner pass (free: purely local computation), one machine
        // per work unit. Sorting by key removes the HashMap's iteration-order
        // nondeterminism from the output.
        let combined: Vec<Vec<(u64, A)>> = self.executor.map_items(&self.machines, |_, machine| {
            let mut local: HashMap<u64, A> = HashMap::new();
            for t in machine {
                let k = key(t);
                let acc = local.entry(k).or_insert_with(|| init(k));
                fold(acc, t);
            }
            let mut pairs: Vec<(u64, A)> = local.into_iter().collect();
            pairs.sort_unstable_by_key(|&(k, _)| k);
            pairs
        });
        let total: usize = combined.iter().map(Vec::len).sum();
        ctx.charge_shuffle(total * self.words_per_tuple);
        // Route each partial to hash(key) % m and merge there.
        let m = self.machines.len().max(1);
        let mut partials: Vec<Vec<(u64, A)>> = (0..m).map(|_| Vec::new()).collect();
        for machine in combined {
            for (k, a) in machine {
                let dest = (splitmix64(k) % m as u64) as usize;
                partials[dest].push((k, a));
            }
        }
        let budget = ctx.config().memory_per_machine;
        let mut loads = WorkerStats::new();
        for (i, bucket) in partials.iter().enumerate() {
            loads.record_machine_load(i, bucket.len() * self.words_per_tuple, budget);
        }
        ctx.absorb_workers([loads])?;
        let mut out = Vec::new();
        for bucket in partials {
            // First-seen order (deterministic) with O(1) expected lookups:
            // the HashMap only indexes into the order-preserving Vec, so its
            // iteration order never leaks into the output.
            let mut index: HashMap<u64, usize> = HashMap::new();
            let mut merged: Vec<(u64, A)> = Vec::new();
            for (k, a) in bucket {
                match index.entry(k) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        combine(&mut merged[*e.get()].1, a)
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(merged.len());
                        merged.push((k, a));
                    }
                }
            }
            out.extend(merged);
        }
        Ok(out)
    }

    /// Broadcasts a small value to every machine. Charges one round and
    /// `machines × words` traffic; errors if the broadcast value alone
    /// exceeds the per-machine budget.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::MemoryExceeded`] if `words` exceeds the budget.
    pub fn broadcast_check(&self, ctx: &mut MpcContext, words: usize) -> Result<(), MpcError> {
        ctx.charge_shuffle(words * self.num_machines());
        ctx.record_machine_load(0, words)
    }
}

/// A cheap 64-bit mixer (SplitMix64 finaliser) used to map keys to machines.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;

    fn small_config() -> MpcConfig {
        MpcConfig {
            memory_per_machine: 64,
            num_machines: 8,
            delta: 0.5,
            strict_memory: true,
            threads: 1,
        }
    }

    #[test]
    fn tuples_distribute_evenly() {
        let cfg = small_config();
        let cluster = Cluster::from_tuples(&cfg, (0u64..80).map(|i| (i, i)).collect());
        assert_eq!(cluster.num_machines(), 8);
        assert_eq!(cluster.len(), 80);
        for i in 0..8 {
            assert_eq!(cluster.machine(i).len(), 10);
        }
        assert_eq!(cluster.max_load_words(), 20);
    }

    #[test]
    fn shuffle_colocates_equal_keys_and_charges_one_round() {
        let cfg = small_config();
        let mut ctx = MpcContext::new(cfg);
        let tuples: Vec<(u64, u64)> = (0..100).map(|i| (i % 10, i)).collect();
        let cluster = Cluster::from_tuples(&cfg, tuples);
        let shuffled = cluster.shuffle_by_key(&mut ctx, |t| t.0).unwrap();
        assert_eq!(ctx.stats().total_rounds(), 1);
        assert_eq!(shuffled.len(), 100);
        // Each key must live on exactly one machine.
        for key in 0..10u64 {
            let machines_with_key: usize = (0..shuffled.num_machines())
                .filter(|&m| shuffled.machine(m).iter().any(|t| t.0 == key))
                .count();
            assert_eq!(machines_with_key, 1, "key {key} split across machines");
        }
    }

    #[test]
    fn shuffle_is_bit_identical_across_backends() {
        let tuples: Vec<(u64, u64)> = (0..500).map(|i| (i % 37, i)).collect();
        let mut outputs = Vec::new();
        let mut stats = Vec::new();
        for threads in [1usize, 2, 8] {
            let cfg = MpcConfig::with_memory(2048, 512).with_threads(threads);
            let mut ctx = MpcContext::new(cfg);
            let cluster = Cluster::from_tuples(&cfg, tuples.clone());
            let shuffled = cluster.shuffle_by_key(&mut ctx, |t| t.0).unwrap();
            let machines: Vec<Vec<(u64, u64)>> = (0..shuffled.num_machines())
                .map(|m| shuffled.machine(m).to_vec())
                .collect();
            outputs.push(machines);
            stats.push(ctx.into_stats());
        }
        assert_eq!(
            outputs[0], outputs[1],
            "threaded(2) diverged from sequential"
        );
        assert_eq!(
            outputs[0], outputs[2],
            "threaded(8) diverged from sequential"
        );
        assert_eq!(stats[0], stats[1]);
        assert_eq!(stats[0], stats[2]);
    }

    #[test]
    fn shuffle_detects_memory_overflow_on_skewed_keys() {
        // All tuples share one key, so one machine must hold everything.
        let cfg = MpcConfig {
            memory_per_machine: 32,
            num_machines: 4,
            delta: 0.5,
            strict_memory: true,
            threads: 1,
        };
        let mut ctx = MpcContext::new(cfg);
        let tuples: Vec<(u64, u64)> = (0..100).map(|i| (7, i)).collect();
        let cluster = Cluster::from_tuples(&cfg, tuples);
        let err = cluster.shuffle_by_key(&mut ctx, |t| t.0).unwrap_err();
        assert!(matches!(err, MpcError::MemoryExceeded { .. }));
        // The threaded backend reports the same overflow.
        let cfg4 = cfg.with_threads(4);
        let mut ctx4 = MpcContext::new(cfg4);
        let cluster4 = Cluster::from_tuples(&cfg4, (0..100u64).map(|i| (7u64, i)).collect());
        let err4 = cluster4.shuffle_by_key(&mut ctx4, |t| t.0).unwrap_err();
        assert_eq!(err, err4);
        // Permissive mode records the violation instead.
        let loose = cfg.permissive();
        let mut ctx2 = MpcContext::new(loose);
        let cluster2 = Cluster::from_tuples(&loose, (0..100u64).map(|i| (7u64, i)).collect());
        assert!(cluster2.shuffle_by_key(&mut ctx2, |t| t.0).is_ok());
        assert!(ctx2.stats().memory_violations() > 0);
    }

    #[test]
    fn map_and_filter_are_free() {
        let cfg = small_config();
        let ctx = MpcContext::new(cfg);
        let cluster = Cluster::from_tuples(&cfg, (0u64..50).map(|i| (i, i)).collect());
        let doubled = cluster.map_local(|t| (t.0, t.1 * 2));
        let even = doubled.filter_local(|t| t.1 % 4 == 0);
        assert_eq!(ctx.stats().total_rounds(), 0);
        assert_eq!(doubled.len(), 50);
        assert_eq!(even.len(), 25);
    }

    #[test]
    fn local_ops_match_across_backends() {
        let cfg = small_config();
        let tuples: Vec<(u64, u64)> = (0..200).map(|i| (i % 13, i)).collect();
        let seq = Cluster::from_tuples(&cfg, tuples.clone());
        let par = Cluster::from_tuples(&cfg.with_threads(4), tuples);
        let a = seq
            .map_local(|t| (t.0, t.1 + 1))
            .flat_map_local(|t| vec![*t, (t.0, t.1 * 2)])
            .filter_local(|t| t.1 % 3 != 0)
            .gather();
        let b = par
            .map_local(|t| (t.0, t.1 + 1))
            .flat_map_local(|t| vec![*t, (t.0, t.1 * 2)])
            .filter_local(|t| t.1 % 3 != 0)
            .gather();
        assert_eq!(a, b);
    }

    #[test]
    fn flat_map_can_expand_tuples() {
        let cfg = small_config();
        let cluster = Cluster::from_tuples(&cfg, vec![(1u64, 1u64), (2, 2)]);
        let expanded = cluster.flat_map_local(|t| vec![(t.0, t.1), (t.0, t.1 + 10)]);
        assert_eq!(expanded.len(), 4);
    }

    #[test]
    fn reduce_by_key_counts_correctly() {
        let cfg = small_config();
        let mut ctx = MpcContext::new(cfg);
        let tuples: Vec<(u64, u64)> = (0..90).map(|i| (i % 3, 1)).collect();
        let cluster = Cluster::from_tuples(&cfg, tuples);
        let mut counts = cluster
            .reduce_by_key(
                &mut ctx,
                |t| t.0,
                |_| 0u64,
                |acc, t| *acc += t.1,
                |acc, b| *acc += b,
            )
            .unwrap();
        counts.sort_unstable();
        assert_eq!(counts, vec![(0, 30), (1, 30), (2, 30)]);
        assert_eq!(ctx.stats().total_rounds(), 1);
    }

    #[test]
    fn reduce_by_key_matches_across_backends_without_sorting() {
        let tuples: Vec<(u64, u64)> = (0..400).map(|i| (i % 23, 1)).collect();
        let mut results = Vec::new();
        for threads in [1usize, 4] {
            let cfg = MpcConfig::with_memory(2048, 512).with_threads(threads);
            let mut ctx = MpcContext::new(cfg);
            let cluster = Cluster::from_tuples(&cfg, tuples.clone());
            let counts = cluster
                .reduce_by_key(
                    &mut ctx,
                    |t| t.0,
                    |_| 0u64,
                    |acc, t| *acc += t.1,
                    |acc, b| *acc += b,
                )
                .unwrap();
            results.push(counts);
        }
        // Not merely the same multiset: the *order* must match too.
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn reduce_by_key_with_skew_stays_within_budget_via_combiners() {
        // 1000 tuples all with the same key but spread over machines: the
        // combiner collapses them to one partial per machine, so no overflow.
        let cfg = MpcConfig {
            memory_per_machine: 64,
            num_machines: 16,
            delta: 0.5,
            strict_memory: true,
            threads: 1,
        };
        let mut ctx = MpcContext::new(cfg);
        let cluster = Cluster::from_tuples(&cfg, (0..1000u64).map(|_| (5u64, 1u64)).collect());
        let counts = cluster
            .reduce_by_key(
                &mut ctx,
                |t| t.0,
                |_| 0u64,
                |acc, t| *acc += t.1,
                |acc, b| *acc += b,
            )
            .unwrap();
        assert_eq!(counts, vec![(5, 1000)]);
    }

    #[test]
    fn broadcast_too_large_fails() {
        let cfg = small_config();
        let mut ctx = MpcContext::new(cfg);
        let cluster = Cluster::from_tuples(&cfg, vec![(0u64, 0u64)]);
        assert!(cluster.broadcast_check(&mut ctx, 10).is_ok());
        assert!(cluster.broadcast_check(&mut ctx, 1000).is_err());
    }

    #[test]
    fn keyed_tuple_trait_for_pairs() {
        let t = (42u64, "payload");
        assert_eq!(t.key(), 42);
    }

    #[test]
    fn gather_returns_everything() {
        let cfg = small_config();
        let cluster = Cluster::from_tuples(&cfg, (0u64..33).map(|i| (i, ())).collect());
        let mut all: Vec<u64> = cluster.gather().into_iter().map(|t| t.0).collect();
        all.sort_unstable();
        assert_eq!(all, (0..33u64).collect::<Vec<_>>());
    }
}
