//! MPC model configuration: memory per machine, machine count, `δ`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors produced by the MPC simulator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MpcError {
    /// A machine would have to hold more words than its memory budget allows.
    MemoryExceeded {
        /// The machine that overflowed.
        machine: usize,
        /// Number of words it would have to hold.
        required: usize,
        /// The per-machine budget.
        budget: usize,
    },
    /// The configuration itself is infeasible (e.g. total memory smaller than
    /// the input).
    InfeasibleConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::MemoryExceeded {
                machine,
                required,
                budget,
            } => write!(
                f,
                "machine {machine} needs {required} words but the per-machine budget is {budget}"
            ),
            MpcError::InfeasibleConfig { reason } => {
                write!(f, "infeasible MPC configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for MpcError {}

/// Configuration of the simulated MPC cluster.
///
/// `memory_per_machine` is measured in *words* (one word holds one vertex id,
/// one edge endpoint, one counter, …), matching how the paper counts memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpcConfig {
    /// Per-machine memory budget `s`, in words.
    pub memory_per_machine: usize,
    /// Number of machines available.
    pub num_machines: usize,
    /// The exponent `δ` such that `s ≈ N^δ` (informational; round accounting
    /// for sort/search uses `memory_per_machine` directly).
    pub delta: f64,
    /// When `true`, exceeding a machine's budget is a hard error
    /// ([`MpcError::MemoryExceeded`]); when `false` it is recorded in the
    /// statistics as a violation but execution continues. Experiments that
    /// sweep undersized memory budgets use the permissive mode.
    pub strict_memory: bool,
    /// Worker threads of the execution backend driving per-machine /
    /// per-chunk work: `1` selects the sequential backend, `n > 1` the
    /// persistent-pool threaded backend, and `0` means "resolve from the
    /// `WCC_THREADS` environment variable"
    /// ([`Executor::resolve`](crate::Executor::resolve)) — where the
    /// variable's own `0` means one worker per available CPU
    /// ([`Executor::auto_threads`](crate::Executor::auto_threads)) and an
    /// unset variable means sequential. The backend choice never changes
    /// results — see the determinism contract in [`crate::executor`].
    pub threads: usize,
}

impl MpcConfig {
    /// Configuration with per-machine memory `s ≈ N^δ` (at least 16 words)
    /// and enough machines to hold `slack × N` words in total.
    ///
    /// The paper allows `polylog(n)` slack factors in both memory and machine
    /// count (Theorem 1); the default slack here is 4× the minimum machine
    /// count, recorded in [`RoundStats`](crate::RoundStats) so experiments can
    /// report total memory honestly.
    pub fn for_input_size(input_words: usize, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        let n = input_words.max(2) as f64;
        let s = n.powf(delta).ceil() as usize;
        let s = s.max(16);
        let min_machines = input_words.div_ceil(s).max(1);
        MpcConfig {
            memory_per_machine: s,
            num_machines: 4 * min_machines,
            delta,
            strict_memory: true,
            threads: 0,
        }
    }

    /// Configuration with an explicit per-machine memory budget.
    pub fn with_memory(input_words: usize, memory_per_machine: usize) -> Self {
        let s = memory_per_machine.max(2);
        let n = input_words.max(2) as f64;
        MpcConfig {
            memory_per_machine: s,
            num_machines: 4 * input_words.div_ceil(s).max(1),
            delta: (s as f64).ln() / n.ln(),
            strict_memory: true,
            threads: 0,
        }
    }

    /// Returns a copy with memory violations downgraded to recorded warnings.
    pub fn permissive(mut self) -> Self {
        self.strict_memory = false;
        self
    }

    /// Returns a copy with the given number of machines.
    pub fn with_machines(mut self, num_machines: usize) -> Self {
        self.num_machines = num_machines.max(1);
        self
    }

    /// Returns a copy using the given number of worker threads (`1` =
    /// sequential backend, `0` = resolve from `WCC_THREADS`, whose own `0`
    /// means one worker per available CPU).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The execution backend this configuration selects.
    pub fn executor(&self) -> crate::Executor {
        crate::Executor::resolve(self.threads)
    }

    /// Total memory across the cluster, in words.
    pub fn total_memory(&self) -> usize {
        self.memory_per_machine * self.num_machines
    }

    /// Number of rounds charged for a Goodrich sort or search over `n` items:
    /// `⌈log_s n⌉`, and at least 1 (Section 2, "Sort and search in the MPC
    /// model").
    pub fn sort_rounds(&self, n_items: usize) -> u64 {
        if n_items <= 1 {
            return 1;
        }
        let s = self.memory_per_machine.max(2) as f64;
        ((n_items as f64).ln() / s.ln()).ceil().max(1.0) as u64
    }

    /// Checks that the configuration can hold `input_words` of input at all.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::InfeasibleConfig`] if total memory is smaller than
    /// the input.
    pub fn check_feasible(&self, input_words: usize) -> Result<(), MpcError> {
        if self.total_memory() < input_words {
            return Err(MpcError::InfeasibleConfig {
                reason: format!(
                    "total memory {} words cannot hold input of {} words",
                    self.total_memory(),
                    input_words
                ),
            });
        }
        Ok(())
    }
}

impl Default for MpcConfig {
    /// A laptop-scale default: memory for `N = 2^20` words at `δ = 0.5`.
    fn default() -> Self {
        MpcConfig::for_input_size(1 << 20, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_input_size_sets_power_law_memory() {
        let c = MpcConfig::for_input_size(1_000_000, 0.5);
        assert!(c.memory_per_machine >= 1000 && c.memory_per_machine <= 1100);
        assert!(c.total_memory() >= 1_000_000);
        assert!(c.check_feasible(1_000_000).is_ok());
    }

    #[test]
    fn sort_rounds_is_log_base_s() {
        let c = MpcConfig::with_memory(1 << 20, 1 << 10);
        assert_eq!(c.sort_rounds(1 << 20), 2);
        assert_eq!(c.sort_rounds(1 << 10), 1);
        assert_eq!(c.sort_rounds(1), 1);
        let tiny = MpcConfig::with_memory(1 << 20, 4);
        assert!(tiny.sort_rounds(1 << 20) >= 10);
    }

    #[test]
    fn infeasible_config_detected() {
        let c = MpcConfig {
            memory_per_machine: 10,
            num_machines: 2,
            delta: 0.5,
            strict_memory: true,
            threads: 1,
        };
        assert!(matches!(
            c.check_feasible(100),
            Err(MpcError::InfeasibleConfig { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "delta must lie in (0, 1)")]
    fn delta_out_of_range_panics() {
        let _ = MpcConfig::for_input_size(100, 1.5);
    }

    #[test]
    fn permissive_and_with_machines_builders() {
        let c = MpcConfig::for_input_size(1000, 0.5)
            .permissive()
            .with_machines(7);
        assert!(!c.strict_memory);
        assert_eq!(c.num_machines, 7);
    }

    #[test]
    fn with_threads_selects_the_backend() {
        let c = MpcConfig::for_input_size(1000, 0.5);
        assert_eq!(c.threads, 0, "default resolves from the environment");
        assert_eq!(c.with_threads(1).executor().threads(), 1);
        assert_eq!(c.with_threads(4).executor().threads(), 4);
    }
}
