//! Process-wide walk-kernel telemetry.
//!
//! The randomize phase is the pipeline's wall-clock sink, and the v3 walk
//! kernel's whole case rests on *consuming less* per simulated step: fewer
//! keystream words (32-bit Lemire draws), fewer executed steps (stay-run
//! compression), fewer random adjacency loads. These counters are the
//! instruments that make those savings observable — `wcc --json` surfaces
//! them as a `walk` object so the next profile-driven attack starts from
//! numbers, not guesses.
//!
//! Like the pool counters ([`crate::PoolTelemetry`]), the walk counters are
//! process-wide relaxed atomics: walk workers cannot touch the
//! `&mut MpcContext` (the executor determinism contract, DESIGN.md §3), so
//! they accumulate into a local [`WalkTelemetry`] and flush once per worker
//! chunk via [`record_walk_telemetry`]. The counters are cumulative
//! observables, **not** model quantities: they are deliberately outside
//! `RoundStats`, so stats equality across kernels, backends and thread
//! counts is untouched — exactly like `wall_time_ms`.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// A snapshot (or local accumulator) of walk-kernel activity. All counts are
/// cumulative since process start when obtained from
/// [`walk_telemetry_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct WalkTelemetry {
    /// Lazy walk steps simulated (stays + real moves). One walk of length
    /// `t` contributes exactly `t`, whichever kernel ran it.
    pub steps: u64,
    /// Steps that paid a neighbour draw and a random adjacency load. The
    /// spec kernel loads on every step (`moves == steps`); the v3 kernel
    /// only on the ~1/2 of steps whose stay/move coin came up "move".
    pub moves: u64,
    /// Stay steps that were skipped by v3 stay-run compression instead of
    /// being executed individually. Zero for the spec kernel (it executes
    /// every stay as a full step).
    pub stays_compressed: u64,
    /// ChaCha8 keystream words (u32) consumed by draws: pattern words,
    /// index words and rejection redraws for v3; two words per step for the
    /// spec kernel.
    pub keystream_words: u64,
    /// Batched keystream block refills (each produces 16 words per lane).
    pub refills: u64,
    /// Lane groups the batched **spec** kernel re-ran on the step-by-step
    /// path because a lane neared the Lemire rejection loop. Structurally
    /// zero for the v3 kernel, which resolves rejection exactly in-line
    /// from its per-lane buffers (DESIGN.md §10).
    pub spec_fallbacks: u64,
}

impl WalkTelemetry {
    /// Folds another accumulator into `self` (used by workers that keep
    /// separate per-kernel tallies before flushing).
    pub fn merge(&mut self, other: &WalkTelemetry) {
        self.steps += other.steps;
        self.moves += other.moves;
        self.stays_compressed += other.stays_compressed;
        self.keystream_words += other.keystream_words;
        self.refills += other.refills;
        self.spec_fallbacks += other.spec_fallbacks;
    }
}

/// The process-wide totals, updated with relaxed atomics (they order
/// nothing; the counters are observability, not synchronisation).
struct Counters {
    steps: AtomicU64,
    moves: AtomicU64,
    stays_compressed: AtomicU64,
    keystream_words: AtomicU64,
    refills: AtomicU64,
    spec_fallbacks: AtomicU64,
}

static GLOBAL: Counters = Counters {
    steps: AtomicU64::new(0),
    moves: AtomicU64::new(0),
    stays_compressed: AtomicU64::new(0),
    keystream_words: AtomicU64::new(0),
    refills: AtomicU64::new(0),
    spec_fallbacks: AtomicU64::new(0),
};

/// Adds a worker-local accumulator to the process-wide totals. Call once per
/// worker chunk, not per step — the counters are relaxed atomics, but a
/// fetch-add per walk step would still poison the hot loop.
pub fn record_walk_telemetry(delta: &WalkTelemetry) {
    GLOBAL.steps.fetch_add(delta.steps, Ordering::Relaxed);
    GLOBAL.moves.fetch_add(delta.moves, Ordering::Relaxed);
    GLOBAL
        .stays_compressed
        .fetch_add(delta.stays_compressed, Ordering::Relaxed);
    GLOBAL
        .keystream_words
        .fetch_add(delta.keystream_words, Ordering::Relaxed);
    GLOBAL.refills.fetch_add(delta.refills, Ordering::Relaxed);
    GLOBAL
        .spec_fallbacks
        .fetch_add(delta.spec_fallbacks, Ordering::Relaxed);
}

/// Snapshot of the process-wide walk counters.
pub fn walk_telemetry_snapshot() -> WalkTelemetry {
    WalkTelemetry {
        steps: GLOBAL.steps.load(Ordering::Relaxed),
        moves: GLOBAL.moves.load(Ordering::Relaxed),
        stays_compressed: GLOBAL.stays_compressed.load(Ordering::Relaxed),
        keystream_words: GLOBAL.keystream_words.load(Ordering::Relaxed),
        refills: GLOBAL.refills.load(Ordering::Relaxed),
        spec_fallbacks: GLOBAL.spec_fallbacks.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_accumulates_into_the_snapshot() {
        let before = walk_telemetry_snapshot();
        let delta = WalkTelemetry {
            steps: 100,
            moves: 47,
            stays_compressed: 53,
            keystream_words: 60,
            refills: 2,
            spec_fallbacks: 1,
        };
        record_walk_telemetry(&delta);
        let after = walk_telemetry_snapshot();
        // Other tests may record concurrently, so assert `>=` deltas.
        assert!(after.steps >= before.steps + 100);
        assert!(after.moves >= before.moves + 47);
        assert!(after.stays_compressed >= before.stays_compressed + 53);
        assert!(after.keystream_words >= before.keystream_words + 60);
        assert!(after.refills >= before.refills + 2);
        assert!(after.spec_fallbacks > before.spec_fallbacks);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = WalkTelemetry {
            steps: 10,
            moves: 4,
            stays_compressed: 6,
            keystream_words: 7,
            refills: 1,
            spec_fallbacks: 0,
        };
        let b = WalkTelemetry {
            steps: 5,
            moves: 5,
            stays_compressed: 0,
            keystream_words: 10,
            refills: 1,
            spec_fallbacks: 2,
        };
        a.merge(&b);
        assert_eq!(a.steps, 15);
        assert_eq!(a.moves, 9);
        assert_eq!(a.stays_compressed, 6);
        assert_eq!(a.keystream_words, 17);
        assert_eq!(a.refills, 2);
        assert_eq!(a.spec_fallbacks, 2);
    }
}
