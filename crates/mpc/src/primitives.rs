//! The standard MPC primitives of Goodrich–Sitchinava–Zhang that the paper
//! relies on (Section 2, "Sort and search in the MPC model"): parallel sort
//! and parallel search in `O(log_s N)` rounds, plus the small helpers built
//! on them (deduplication, counting by key).
//!
//! These run on the [`Cluster`](crate::Cluster) execution layer and charge
//! their documented round cost against an [`MpcContext`](crate::MpcContext);
//! higher-level algorithms that do not need a faithful execution can charge
//! the same costs directly via [`MpcContext::charge_sort`] and
//! [`MpcContext::charge_search`].

use crate::cluster::Cluster;
use crate::config::MpcError;
use crate::stats::MpcContext;

/// Sorts all tuples of the cluster globally: after the call, machine `i`
/// holds a contiguous run of the sorted order and runs are ordered by
/// machine index.
///
/// Charges `⌈log_s N⌉` rounds (the cost of the Goodrich sample-sort the
/// paper cites) and verifies that the balanced output respects the memory
/// budget.
///
/// # Errors
///
/// Returns [`MpcError::MemoryExceeded`] if an output machine would exceed its
/// memory budget.
pub fn distributed_sort<T, K, F>(
    cluster: &Cluster<T>,
    ctx: &mut MpcContext,
    mut sort_key: F,
) -> Result<Cluster<T>, MpcError>
where
    T: Clone,
    K: Ord,
    F: FnMut(&T) -> K,
{
    let n = cluster.len();
    ctx.charge_sort(n);
    let mut all: Vec<T> = Vec::with_capacity(n);
    for m in 0..cluster.num_machines() {
        all.extend_from_slice(cluster.machine(m));
    }
    all.sort_by_key(|a| sort_key(a));
    // Redistribute contiguous runs.
    let machines = cluster.num_machines().max(1);
    let chunk = n.div_ceil(machines).max(1);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(machines);
    let mut iter = all.into_iter();
    for i in 0..machines {
        let part: Vec<T> = iter.by_ref().take(chunk).collect();
        ctx.record_machine_load(i, 2 * part.len())?;
        out.push(part);
    }
    Ok(Cluster::from_partitions(out))
}

/// Parallel search (Goodrich): annotates every query key with the value
/// stored for it in `data`, or `None` if the key is absent.
///
/// Charges `⌈log_s(|data| + |queries|)⌉` rounds.
pub fn distributed_search<K, V>(
    data: &[(K, V)],
    queries: &[K],
    ctx: &mut MpcContext,
) -> Vec<Option<V>>
where
    K: Ord + Clone,
    V: Clone,
{
    ctx.charge_search(data.len(), queries.len());
    let mut sorted: Vec<(K, V)> = data.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    queries
        .iter()
        .map(|q| {
            sorted
                .binary_search_by(|probe| probe.0.cmp(q))
                .ok()
                .map(|i| sorted[i].1.clone())
        })
        .collect()
}

/// Removes duplicate tuples (by a key projection) across the whole cluster.
/// Implemented as a sort followed by a local adjacent-deduplication, so it
/// charges one sort.
///
/// # Errors
///
/// Returns [`MpcError::MemoryExceeded`] if the sorted intermediate would
/// exceed a machine's budget.
pub fn distributed_dedup<T, K, F>(
    cluster: &Cluster<T>,
    ctx: &mut MpcContext,
    mut dedup_key: F,
) -> Result<Cluster<T>, MpcError>
where
    T: Clone,
    K: Ord + Clone,
    F: FnMut(&T) -> K,
{
    let sorted = distributed_sort(cluster, ctx, &mut dedup_key)?;
    // Local dedup on each machine plus dropping a leading duplicate that
    // continues the previous machine's run (purely local + one exchanged
    // boundary tuple, which we fold into the sort's charge).
    let machines = sorted.num_machines();
    let mut out: Vec<Vec<T>> = Vec::with_capacity(machines);
    let mut last_key: Option<K> = None;
    for i in 0..machines {
        let mut kept = Vec::new();
        for t in sorted.machine(i) {
            let k = dedup_key(t);
            if last_key.as_ref() != Some(&k) {
                kept.push(t.clone());
                last_key = Some(k);
            }
        }
        out.push(kept);
    }
    Ok(Cluster::from_partitions(out))
}

/// Counts tuples per key across the cluster. One round (combiner-based
/// aggregation).
///
/// # Errors
///
/// Returns [`MpcError::MemoryExceeded`] if the per-machine partial counts
/// exceed a machine's budget.
pub fn count_by_key<T, F>(
    cluster: &Cluster<T>,
    ctx: &mut MpcContext,
    key: F,
) -> Result<Vec<(u64, u64)>, MpcError>
where
    T: Clone,
    F: FnMut(&T) -> u64,
{
    cluster.reduce_by_key(ctx, key, |_| 0u64, |acc, _| *acc += 1, |acc, b| *acc += b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;

    fn cfg(s: usize, machines: usize) -> MpcConfig {
        MpcConfig {
            memory_per_machine: s,
            num_machines: machines,
            delta: 0.5,
            strict_memory: true,
        }
    }

    #[test]
    fn sort_produces_global_order_and_charges_log_s_rounds() {
        let config = cfg(64, 8);
        let mut ctx = MpcContext::new(config);
        let tuples: Vec<(u64, u64)> = (0..128).map(|i| ((997 * i) % 128, i)).collect();
        let cluster = Cluster::from_tuples(&config, tuples);
        let sorted = distributed_sort(&cluster, &mut ctx, |t| t.0).unwrap();
        let keys: Vec<u64> = sorted.clone().gather().iter().map(|t| t.0).collect();
        // gather() concatenates machines in order, so the keys must already be sorted.
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(keys, expected);
        assert_eq!(ctx.stats().total_rounds(), config.sort_rounds(128));
    }

    #[test]
    fn sort_overflow_is_detected() {
        // 100 tuples over 2 machines with budget 20 words -> 50 tuples/machine won't fit.
        let config = cfg(20, 2);
        let mut ctx = MpcContext::new(config);
        let cluster = Cluster::from_tuples(&config, (0u64..100).map(|i| (i, i)).collect());
        assert!(distributed_sort(&cluster, &mut ctx, |t| t.0).is_err());
    }

    #[test]
    fn search_annotates_queries() {
        let config = cfg(256, 4);
        let mut ctx = MpcContext::new(config);
        let data: Vec<(u64, &str)> = vec![(1, "a"), (5, "b"), (9, "c")];
        let queries = vec![5u64, 2, 9];
        let out = distributed_search(&data, &queries, &mut ctx);
        assert_eq!(out, vec![Some("b"), None, Some("c")]);
        assert!(ctx.stats().total_rounds() >= 1);
    }

    #[test]
    fn dedup_removes_cross_machine_duplicates() {
        let config = cfg(256, 4);
        let mut ctx = MpcContext::new(config);
        let tuples: Vec<(u64, u64)> = (0..60).map(|i| (i % 10, 0)).collect();
        let cluster = Cluster::from_tuples(&config, tuples);
        let deduped = distributed_dedup(&cluster, &mut ctx, |t| t.0).unwrap();
        assert_eq!(deduped.len(), 10);
    }

    #[test]
    fn count_by_key_matches_manual_count() {
        let config = cfg(256, 4);
        let mut ctx = MpcContext::new(config);
        let tuples: Vec<(u64, u64)> = (0..90).map(|i| (i % 9, i)).collect();
        let cluster = Cluster::from_tuples(&config, tuples);
        let mut counts = count_by_key(&cluster, &mut ctx, |t| t.0).unwrap();
        counts.sort_unstable();
        assert_eq!(counts.len(), 9);
        assert!(counts.iter().all(|&(_, c)| c == 10));
    }
}
