//! The standard MPC primitives of Goodrich–Sitchinava–Zhang that the paper
//! relies on (Section 2, "Sort and search in the MPC model"): parallel sort
//! and parallel search in `O(log_s N)` rounds, plus the small helpers built
//! on them (deduplication, counting by key).
//!
//! These run on the [`Cluster`](crate::Cluster) execution layer and charge
//! their documented round cost against an [`MpcContext`](crate::MpcContext);
//! higher-level algorithms that do not need a faithful execution can charge
//! the same costs directly via [`MpcContext::charge_sort`] and
//! [`MpcContext::charge_search`].

use crate::cluster::Cluster;
use crate::config::MpcError;
use crate::stats::{MpcContext, WorkerStats};

/// Sorts all tuples of the cluster globally: after the call, machine `i`
/// holds a contiguous run of the sorted order and runs are ordered by
/// machine index.
///
/// Charges `⌈log_s N⌉` rounds (the cost of the Goodrich sample-sort the
/// paper cites) and verifies that the balanced output respects the memory
/// budget.
///
/// On the threaded backend each simulated machine key-sorts its tuples
/// concurrently and the runs are folded together by a stable left-preferring
/// merge — which is exactly the order a stable sort of the concatenated
/// machines produces, so the output is identical on every backend.
///
/// # Errors
///
/// Returns [`MpcError::MemoryExceeded`] if an output machine would exceed its
/// memory budget.
pub fn distributed_sort<T, K, F>(
    cluster: &Cluster<T>,
    ctx: &mut MpcContext,
    sort_key: F,
) -> Result<Cluster<T>, MpcError>
where
    T: Clone + Send + Sync,
    K: Ord + Send,
    F: Fn(&T) -> K + Sync,
{
    let n = cluster.len();
    // Model cost in items (unchanged); the byte column records the actual
    // tuple representation being permuted.
    ctx.charge_sort_with_bytes(n, std::mem::size_of::<T>());
    let executor = cluster.executor();
    // Per-machine local sorts, decorated with their keys (computed once, in
    // the worker that owns the machine).
    let mut runs: Vec<Vec<(K, T)>> = executor.map_indexed(cluster.num_machines(), |m| {
        let mut run: Vec<(K, T)> = cluster
            .machine(m)
            .iter()
            .map(|t| (sort_key(t), t.clone()))
            .collect();
        run.sort_by(|a, b| a.0.cmp(&b.0));
        run
    });
    // Stable fold of adjacent runs (left preferred on ties) — equivalent to
    // a stable sort of the machine-order concatenation. O(n log m) on the
    // calling thread; the O(n log n) local sorts above carry the parallelism.
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(left) = iter.next() {
            match iter.next() {
                Some(right) => next.push(merge_stable(left, right)),
                None => next.push(left),
            }
        }
        runs = next;
    }
    let all: Vec<T> = runs
        .pop()
        .unwrap_or_default()
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    // Redistribute contiguous runs: with the flat arena the sorted vector
    // *is* the output storage — only the offset table (even chunks) is
    // computed, and the load accounting walks its spans.
    let machines = cluster.num_machines().max(1);
    let chunk = n.div_ceil(machines).max(1);
    let offsets: Vec<usize> = (0..=machines).map(|i| (i * chunk).min(n)).collect();
    let budget = ctx.config().memory_per_machine;
    let mut loads = WorkerStats::new();
    // Charge the cluster's actual per-tuple width (historically hardcoded
    // to the 2-word default, which undercounted wide and overcounted
    // compact clusters).
    loads.record_span_loads(&offsets, cluster.words_per_tuple(), budget);
    ctx.absorb_workers([loads])?;
    Ok(Cluster::from_arena(all, offsets)
        .with_words_per_tuple(cluster.words_per_tuple())
        .with_executor(executor))
}

/// Stable two-way merge preferring the left run on equal keys.
fn merge_stable<K: Ord, T>(left: Vec<(K, T)>, right: Vec<(K, T)>) -> Vec<(K, T)> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut l = left.into_iter().peekable();
    let mut r = right.into_iter().peekable();
    loop {
        match (l.peek(), r.peek()) {
            (Some(a), Some(b)) => {
                if a.0 <= b.0 {
                    out.push(l.next().expect("peeked"));
                } else {
                    out.push(r.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(l.next().expect("peeked")),
            (None, Some(_)) => out.push(r.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

/// Parallel search (Goodrich): annotates every query key with the value
/// stored for it in `data`, or `None` if the key is absent. Queries are
/// answered concurrently on the context's backend.
///
/// Charges `⌈log_s(|data| + |queries|)⌉` rounds.
pub fn distributed_search<K, V>(
    data: &[(K, V)],
    queries: &[K],
    ctx: &mut MpcContext,
) -> Vec<Option<V>>
where
    K: Ord + Clone + Sync,
    V: Clone + Send + Sync,
{
    ctx.charge_search(data.len(), queries.len());
    let mut sorted: Vec<(K, V)> = data.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    ctx.executor().map_indexed(queries.len(), |i| {
        sorted
            .binary_search_by(|probe| probe.0.cmp(&queries[i]))
            .ok()
            .map(|j| sorted[j].1.clone())
    })
}

/// Removes duplicate tuples (by a key projection) across the whole cluster.
/// Implemented as a sort followed by a local adjacent-deduplication, so it
/// charges one sort.
///
/// # Errors
///
/// Returns [`MpcError::MemoryExceeded`] if the sorted intermediate would
/// exceed a machine's budget.
pub fn distributed_dedup<T, K, F>(
    cluster: &Cluster<T>,
    ctx: &mut MpcContext,
    dedup_key: F,
) -> Result<Cluster<T>, MpcError>
where
    T: Clone + Send + Sync,
    K: Ord + Clone + Send,
    F: Fn(&T) -> K + Sync,
{
    let mut sorted = distributed_sort(cluster, ctx, &dedup_key)?;
    // Local dedup on each machine plus dropping a leading duplicate that
    // continues the previous machine's run (purely local + one exchanged
    // boundary tuple, which we fold into the sort's charge). The in-place
    // filter compacts the arena without reallocating.
    let mut last_key: Option<K> = None;
    sorted.filter_local_in_place(|t| {
        let k = dedup_key(t);
        if last_key.as_ref() != Some(&k) {
            last_key = Some(k);
            true
        } else {
            false
        }
    });
    Ok(sorted)
}

/// Counts tuples per key across the cluster. One round (combiner-based
/// aggregation).
///
/// # Errors
///
/// Returns [`MpcError::MemoryExceeded`] if the per-machine partial counts
/// exceed a machine's budget.
pub fn count_by_key<T, F>(
    cluster: &Cluster<T>,
    ctx: &mut MpcContext,
    key: F,
) -> Result<Vec<(u64, u64)>, MpcError>
where
    T: Clone + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    cluster.reduce_by_key(ctx, key, |_| 0u64, |acc, _| *acc += 1, |acc, b| *acc += b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;

    fn cfg(s: usize, machines: usize) -> MpcConfig {
        MpcConfig {
            memory_per_machine: s,
            num_machines: machines,
            delta: 0.5,
            strict_memory: true,
            threads: 1,
        }
    }

    #[test]
    fn sort_produces_global_order_and_charges_log_s_rounds() {
        let config = cfg(64, 8);
        let mut ctx = MpcContext::new(config);
        let tuples: Vec<(u64, u64)> = (0..128).map(|i| ((997 * i) % 128, i)).collect();
        let cluster = Cluster::from_tuples(&config, tuples);
        let sorted = distributed_sort(&cluster, &mut ctx, |t| t.0).unwrap();
        let keys: Vec<u64> = sorted.clone().gather().iter().map(|t| t.0).collect();
        // gather() concatenates machines in order, so the keys must already be sorted.
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(keys, expected);
        assert_eq!(ctx.stats().total_rounds(), config.sort_rounds(128));
    }

    #[test]
    fn sort_overflow_is_detected() {
        // 100 tuples over 2 machines with budget 20 words -> 50 tuples/machine won't fit.
        let config = cfg(20, 2);
        let mut ctx = MpcContext::new(config);
        let cluster = Cluster::from_tuples(&config, (0u64..100).map(|i| (i, i)).collect());
        assert!(distributed_sort(&cluster, &mut ctx, |t| t.0).is_err());
    }

    #[test]
    fn search_annotates_queries() {
        let config = cfg(256, 4);
        let mut ctx = MpcContext::new(config);
        let data: Vec<(u64, &str)> = vec![(1, "a"), (5, "b"), (9, "c")];
        let queries = vec![5u64, 2, 9];
        let out = distributed_search(&data, &queries, &mut ctx);
        assert_eq!(out, vec![Some("b"), None, Some("c")]);
        assert!(ctx.stats().total_rounds() >= 1);
    }

    #[test]
    fn dedup_removes_cross_machine_duplicates() {
        let config = cfg(256, 4);
        let mut ctx = MpcContext::new(config);
        let tuples: Vec<(u64, u64)> = (0..60).map(|i| (i % 10, 0)).collect();
        let cluster = Cluster::from_tuples(&config, tuples);
        let deduped = distributed_dedup(&cluster, &mut ctx, |t| t.0).unwrap();
        assert_eq!(deduped.len(), 10);
    }

    #[test]
    fn count_by_key_matches_manual_count() {
        let config = cfg(256, 4);
        let mut ctx = MpcContext::new(config);
        let tuples: Vec<(u64, u64)> = (0..90).map(|i| (i % 9, i)).collect();
        let cluster = Cluster::from_tuples(&config, tuples);
        let mut counts = count_by_key(&cluster, &mut ctx, |t| t.0).unwrap();
        counts.sort_unstable();
        assert_eq!(counts.len(), 9);
        assert!(counts.iter().all(|&(_, c)| c == 10));
    }
}
