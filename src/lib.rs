//! Umbrella crate for the Assadi–Sun–Weinstein (PODC 2019) reproduction.
//!
//! This root package exists to own the repo-level integration tests
//! (`tests/`) and runnable examples (`examples/`); it re-exports every member
//! crate so those targets see the whole workspace through one dependency.

pub use wcc_baselines as baselines;
pub use wcc_bench as bench;
pub use wcc_core as core;
pub use wcc_graph as graph;
pub use wcc_mpc as mpc;
pub use wcc_sketch as sketch;
